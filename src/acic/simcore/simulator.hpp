// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a min-heap of timestamped events.
// Higher layers build two styles of logic on top of it:
//   * callback events scheduled with `at()` / `in()`, and
//   * process-style C++20 coroutines (`Task`) spawned with `spawn()`,
//     which suspend on awaitables (timers, conditions, flow completions).
// Events with equal timestamps fire in FIFO order (a monotone sequence
// number breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "acic/common/check.hpp"
#include "acic/common/units.hpp"
#include "acic/simcore/task.hpp"

namespace acic::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  /// Rolls this simulator's lifetime totals (events executed, simulated
  /// seconds) into the process-wide `acic::obs` registry — one registry
  /// touch per simulation, so the per-event hot path stays metric-free.
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time, seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  EventId at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a delay of `dt` seconds.
  EventId in(SimTime dt, std::function<void()> fn) {
    return at(now_ + dt, std::move(fn));
  }

  /// Cancel a previously scheduled event; harmless if already fired.
  void cancel(EventId id);

  /// Launch a coroutine process.  The simulator keeps its frame alive for
  /// the lifetime of the simulation and rethrows any escaped exception at
  /// the end of run().
  void spawn(Task task);

  /// Run until the event queue drains.  Throws if any spawned process
  /// terminated with an exception.
  void run();

  /// Run until every spawned process has finished (later events — e.g.
  /// scheduled fault injections past the job's end — stay queued).
  /// Throws if any process terminated with an exception.
  void run_until_processes_done();

  /// Watchdog variant: run until every process has finished, the queue
  /// drains, or the next event lies past `deadline` — whichever comes
  /// first.  Returns true iff all processes finished.  Unlike
  /// run_until_processes_done(), a stalled cluster (capacity permanently
  /// zero, drained queue) is reported, not thrown: the caller decides how
  /// to grade the outcome.  Exceptions from spawned processes still
  /// propagate.
  bool run_until_processes_done_or(SimTime deadline);

  /// Run until `deadline` (events after it stay queued).
  void run_until(SimTime deadline);

  /// Execute the next event; false when the queue is empty.
  bool step();

  /// True once every spawned process has finished.
  bool all_processes_done() const;

  /// Total number of events executed so far (for micro-benchmarks).
  std::uint64_t events_executed() const { return executed_; }

  /// Awaitable for `co_await simulator.delay(dt)` inside a Task.
  /// Delays must be non-negative: a negative dt is always a sign of broken
  /// time arithmetic upstream, not a request to travel backwards.
  auto delay(SimTime dt) {
    ACIC_DCHECK(dt >= 0.0, "negative delay " << dt);
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

 private:
  struct Scheduled {
    SimTime t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  void check_spawned_exceptions();
  /// Drop frames of finished processes (after surfacing their errors) so
  /// long simulations with many short-lived children stay bounded.
  void compact_processes();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  // Last fired (t, id) pair; backs the ACIC_DCHECK that equal-time events
  // fire in strictly increasing id order.
  SimTime last_fired_t_ = -1.0;
  EventId last_fired_id_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t spawned_since_compact_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  std::vector<EventId> cancelled_;  // kept sorted-on-demand, usually tiny
  std::vector<Task> processes_;
};

}  // namespace acic::sim
