// Sizing a genomics read-farm (the mpiBLAST scenario): an 84 GB sequence
// database is scanned by N worker processes over POSIX file-per-process
// I/O.  For each worker count this example walks the configuration space
// with the PB-guided greedy walker — the mode ACIC offers before any
// training database exists — and reports the chosen setup, its runtime,
// its cost, and how many probe runs the walk spent (vs 56 candidates for
// exhaustive search).  The walk iterates to convergence (coordinate
// descent) so a poorly-ordered first pass cannot strand it in a local
// optimum.
#include <cstdio>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/core/ranking.hpp"
#include "acic/core/walker.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"

int main() {
  using namespace acic;

  std::printf("PB screening to order the walk (32 IOR runs)...\n");
  const auto ranking = core::run_pb_ranking();
  const auto order = core::SpaceWalker::system_dims_ranked(
      ranking.importance);

  TextTable table({"workers", "objective", "chosen config", "time", "cost",
                   "probes"});
  for (int workers : {32, 64, 128}) {
    const auto traits = apps::mpiblast(workers);
    for (auto objective :
         {core::Objective::kPerformance, core::Objective::kCost}) {
      // Probe = run an mpiBLAST-shaped job on the candidate; the walker
      // pays for each *fresh* probe, so the engine-backed probe (keyed
      // by canonical RunKey) makes the cost walk reuse everything the
      // performance walk already simulated.
      core::SpaceWalker::ExecProbe probe;
      probe.workload = traits;
      probe.options.seed = 13;
      probe.objective = objective;
      const auto walk =
          core::SpaceWalker::walk_converged(probe, order, /*max_passes=*/3);
      const auto final_run = exec::Executor::global().run(
          exec::RunRequest{traits, walk.best, io::RunOptions{}});
      table.add_row({std::to_string(workers), core::to_string(objective),
                     walk.best.label(), format_time(final_run.total_time),
                     format_money(final_run.cost),
                     std::to_string(walk.probes)});
    }
  }
  std::printf("\nmpiBLAST-style read-farm sizing via PB-guided walking\n\n%s",
              table.to_string().c_str());
  std::printf(
      "\nThe walk needs ~15 probe runs instead of 56 exhaustive ones, and\n"
      "the performance pick differs from the cost pick — the paper's\n"
      "cost/performance divergence in action.\n");
  return 0;
}
