// Quickstart: configure a cloud I/O system for an HPC application in a
// few lines.
//
//   1. rank the exploration-space dimensions with a 32-run PB screening,
//   2. bootstrap the training database with IOR runs on the simulated
//      cloud,
//   3. ask ACIC for the best configuration for MADbench2 at 256 processes,
//   4. verify the recommendation by "running" MADbench2 under it.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
//
// Every simulation routes through the execution engine: export
// ACIC_CACHE_DIR to persist the runs, and a second invocation answers
// the whole training sweep from cache (the `[exec]` stderr line shows
// runs_executed=0 on a warm run).
#include <cstdio>

#include "acic/apps/apps.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"
#include "acic/obs/metrics.hpp"

int main() {
  using namespace acic;

  // --- 1. Screen the 15 dimensions (32 foldover-PB IOR runs). ---------
  std::printf("[1/4] PB screening (32 IOR runs)...\n");
  const auto ranking = core::run_pb_ranking();

  // --- 2. Bootstrap the training database on the top dimensions. ------
  std::printf("[2/4] collecting training data...\n");
  core::TrainingDatabase db;
  core::TrainingPlan plan;
  plan.dim_order = ranking.importance;
  plan.top_dims = 12;
  plan.max_samples = 400;
  const auto stats = core::collect_training_data(db, plan);
  std::printf("      %zu runs, %s simulated EC2 spend\n", stats.runs,
              format_money(stats.money).c_str());

  // --- 3. Recommend a configuration for MADbench2-256. ----------------
  const auto traits = apps::madbench2(256);
  core::Acic acic(db, core::Objective::kPerformance);
  const auto recs = acic.recommend(traits, 3);
  std::printf("[3/4] top-3 recommendations for %s (np=%d):\n",
              traits.name.c_str(), traits.num_processes);
  for (const auto& r : recs) {
    std::printf("      %-22s predicted %0.2fx over baseline\n",
                r.config.label().c_str(), r.predicted_improvement);
  }

  // --- 4. Verify: run BTIO under the pick and under the baseline. -----
  std::printf("[4/4] verifying on the simulated cloud...\n");
  auto& engine = exec::Executor::global();
  const auto picked = engine.run(
      exec::RunRequest{traits, recs.front().config, io::RunOptions{}});
  const auto base = engine.run(exec::RunRequest{
      traits, cloud::IoConfig::baseline(), io::RunOptions{}});
  std::printf("      baseline  %-12s %8.1f s  %s\n",
              cloud::IoConfig::baseline().label().c_str(), base.total_time,
              format_money(base.cost).c_str());
  std::printf("      ACIC pick %-12s %8.1f s  %s  (%.2fx speedup)\n",
              recs.front().config.label().c_str(), picked.total_time,
              format_money(picked.cost).c_str(),
              base.total_time / picked.total_time);

  auto& reg = obs::MetricsRegistry::global();
  std::fprintf(stderr, "[exec] runs_executed=%.0f cache_hits=%.0f\n",
               reg.counter("exec.runs_executed").value(),
               reg.counter("exec.cache_hits").value());
  return 0;
}
