// Checkpoint-cadence what-if study (the FLASHIO scenario from the
// paper's introduction): an astrophysics code writes periodic HDF5
// checkpoints, and the right cloud I/O setup changes with how much and
// how often it writes.
//
// This example sweeps checkpoint volume and cadence and, for each cell,
// asks the simulated cloud which of three natural setups wins — the
// common NFS-over-EBS baseline, an NFS server on local disks, or a
// 4-server PVFS2 array — printing the winner and its margin.  It shows
// the "no one-size-fits-all" effect of Figure 1 on a concrete scenario.
#include <cstdio>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/io/runner.hpp"

int main() {
  using namespace acic;

  cloud::IoConfig nfs_ebs = cloud::IoConfig::baseline();  // nfs.D.ebs
  cloud::IoConfig nfs_eph = nfs_ebs;
  nfs_eph.device = storage::DeviceType::kEphemeral;
  cloud::IoConfig pvfs4;
  pvfs4.fs = cloud::FileSystemType::kPvfs2;
  pvfs4.device = storage::DeviceType::kEphemeral;
  pvfs4.io_servers = 4;
  pvfs4.placement = cloud::Placement::kDedicated;
  pvfs4.stripe_size = 4.0 * MiB;
  const std::vector<cloud::IoConfig> setups = {nfs_ebs, nfs_eph, pvfs4};

  TextTable table({"checkpoint", "every", "winner", "time", "runner-up x"});
  for (double checkpoint_gb : {2.0, 15.0, 60.0}) {
    for (int dumps : {1, 5, 20}) {
      io::Workload w = apps::flashio(256);
      w.iterations = dumps;
      w.data_size = checkpoint_gb * GiB / 256.0;
      // Keep the same total solver time regardless of cadence.
      w.compute_per_iteration = 320.0 / (256.0 * dumps) + 30.0 / dumps;
      w.normalize();

      double best = 1e30, second = 1e30;
      std::string winner;
      for (const auto& cfg : setups) {
        io::RunOptions opts;
        opts.seed = 7;
        const auto r = io::run_workload(w, cfg, opts);
        if (r.total_time < best) {
          second = best;
          best = r.total_time;
          winner = cfg.label();
        } else if (r.total_time < second) {
          second = r.total_time;
        }
      }
      table.add_row({format_bytes(checkpoint_gb * GiB),
                     std::to_string(dumps) + " dumps", winner,
                     format_time(best),
                     TextTable::num(second / best, 2) + "x"});
    }
  }
  std::printf("FLASH-style checkpoint tuning on the simulated cloud\n");
  std::printf("(winner per cell among nfs.D.ebs / nfs.D.eph / pvfs.4.D)\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nThe runner-up margin is the story: for small or infrequent\n"
      "checkpoints the NFS server's RAM write-back makes the cheap setup\n"
      "a statistical tie with the 4-server array (~1.0x), so paying for\n"
      "dedicated PVFS2 instances is wasted money; at 60 GiB x 20 dumps\n"
      "only aggregate PVFS2 bandwidth keeps up (~2x) — Figure 1's\n"
      "no-one-size-fits-all effect on a what-if grid.\n");
  return 0;
}
