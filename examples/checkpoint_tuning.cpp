// Checkpoint-cadence what-if study (the FLASHIO scenario from the
// paper's introduction): an astrophysics code writes periodic HDF5
// checkpoints, and the right cloud I/O setup changes with how much and
// how often it writes.
//
// This example sweeps checkpoint volume and cadence and, for each cell,
// asks the simulated cloud which of three natural setups wins — the
// common NFS-over-EBS baseline, an NFS server on local disks, or a
// 4-server PVFS2 array — printing the winner and its margin.  It shows
// the "no one-size-fits-all" effect of Figure 1 on a concrete scenario.
//
// The 27-run grid goes through the execution engine as one batch:
//   --jobs=N       host threads for the sweep (default: hardware)
//   --no-cache     bypass the run cache (every cell re-simulated)
//   --chaos=NAME   additionally run the grid under the named fault
//                  preset (e.g. spot-preempt) with system-level
//                  checkpoint/restart armed and spot billing, and report
//                  where preemptions move each cell's winner
#include <cstdio>
#include <string>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"

int main(int argc, char** argv) {
  using namespace acic;

  bool no_cache = false;
  unsigned jobs = 0;
  std::string chaos;
  // Default picked so the stock chaos demo terminates fully graded (no
  // restart-budget exhaustion) while still flipping at least one cell's
  // winner; --chaos-seed explores other draws.
  std::uint64_t chaos_seed = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--chaos=", 0) == 0) {
      chaos = arg.substr(8);
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      chaos_seed = std::stoull(arg.substr(13));
    }
  }

  cloud::IoConfig nfs_ebs = cloud::IoConfig::baseline();  // nfs.D.ebs
  cloud::IoConfig nfs_eph = nfs_ebs;
  nfs_eph.device = storage::DeviceType::kEphemeral;
  cloud::IoConfig pvfs4;
  pvfs4.fs = cloud::FileSystemType::kPvfs2;
  pvfs4.device = storage::DeviceType::kEphemeral;
  pvfs4.io_servers = 4;
  pvfs4.placement = cloud::Placement::kDedicated;
  pvfs4.stripe_size = 4.0 * MiB;
  const std::vector<cloud::IoConfig> setups = {nfs_ebs, nfs_eph, pvfs4};

  // Build the whole 9-cell x 3-setup grid, run it as one deduplicating
  // batch, then pick winners per cell from the scattered results.
  exec::ExecutorOptions pass_through;
  pass_through.cache = false;
  exec::Executor uncached(std::move(pass_through));
  exec::Executor& engine = no_cache ? uncached : exec::Executor::global();

  std::vector<exec::RunRequest> requests;
  for (double checkpoint_gb : {2.0, 15.0, 60.0}) {
    for (int dumps : {1, 5, 20}) {
      io::Workload w = apps::flashio(256);
      w.iterations = dumps;
      w.data_size = checkpoint_gb * GiB / 256.0;
      // Keep the same total solver time regardless of cadence.
      w.compute_per_iteration = 320.0 / (256.0 * dumps) + 30.0 / dumps;
      w.normalize();
      for (const auto& cfg : setups) {
        io::RunOptions opts;
        opts.seed = 7;
        requests.push_back(exec::RunRequest{w, cfg, opts});
      }
      if (!chaos.empty()) {
        // The same cell under spot reclamations: system-level restart
        // state (≈ one application checkpoint) dumped periodically
        // through the same file system, spot billing with per-restart
        // fees.  Unknown preset names throw the registry's PluginError
        // listing what is registered.
        for (const auto& cfg : setups) {
          io::RunOptions opts;
          opts.seed = chaos_seed;
          opts.fault_model = plugin::fault_models().lookup(chaos).model;
          opts.checkpoint.enabled = true;
          opts.checkpoint.interval = 120.0;
          opts.checkpoint.bytes = checkpoint_gb * GiB;
          opts.spot_pricing.emplace();
          requests.push_back(exec::RunRequest{w, cfg, opts});
        }
      }
    }
  }
  const auto results = engine.run_batch(requests, jobs, nullptr);
  {
    auto& reg = obs::MetricsRegistry::global();
    std::fprintf(stderr,
                 "[exec] runs_executed=%.0f cache_hits=%.0f "
                 "store_degraded=%.0f\n",
                 reg.counter("exec.runs_executed").value(),
                 reg.counter("exec.cache_hits").value(),
                 reg.gauge("exec.store.degraded").value());
    if (reg.gauge("exec.store.degraded").value() != 0.0) {
      std::fprintf(stderr,
                   "[exec] warning: run store degraded to memo-only — this "
                   "grid's results will not persist to ACIC_CACHE_DIR\n");
    }
  }

  TextTable table({"checkpoint", "every", "winner", "time", "runner-up x"});
  TextTable chaos_table({"checkpoint", "every", "winner", "time", "preempt",
                         "restarts", "lost", "outcome"});
  std::vector<std::string> clean_winners;
  std::size_t idx = 0;
  std::uint64_t total_preemptions = 0, total_restarts = 0;
  std::size_t failed_cells = 0, winner_changed = 0;
  for (double checkpoint_gb : {2.0, 15.0, 60.0}) {
    for (int dumps : {1, 5, 20}) {
      double best = 1e30, second = 1e30;
      std::string winner;
      for (const auto& cfg : setups) {
        const auto& r = results[idx++];
        if (r.total_time < best) {
          second = best;
          best = r.total_time;
          winner = cfg.label();
        } else if (r.total_time < second) {
          second = r.total_time;
        }
      }
      clean_winners.push_back(winner);
      table.add_row({format_bytes(checkpoint_gb * GiB),
                     std::to_string(dumps) + " dumps", winner,
                     format_time(best),
                     TextTable::num(second / best, 2) + "x"});
      if (chaos.empty()) continue;
      // The matching chaos trio follows its clean trio in the batch.
      // Failed runs carry meaningless timings and cannot win a cell.
      double cbest = 1e30;
      std::string cwinner = "(all failed)";
      std::uint64_t cpreempt = 0, crestarts = 0;
      SimTime clost = 0.0;
      bool cell_failed = false;
      for (const auto& cfg : setups) {
        const auto& r = results[idx++];
        cpreempt += r.preemptions;
        crestarts += r.restarts;
        clost += r.lost_sim_time;
        if (r.outcome == io::RunOutcome::kFailed) {
          cell_failed = true;
          continue;
        }
        if (r.total_time < cbest) {
          cbest = r.total_time;
          cwinner = cfg.label();
        }
      }
      total_preemptions += cpreempt;
      total_restarts += crestarts;
      if (cell_failed) ++failed_cells;
      if (cwinner != winner) ++winner_changed;
      chaos_table.add_row(
          {format_bytes(checkpoint_gb * GiB),
           std::to_string(dumps) + " dumps", cwinner,
           cbest < 1e29 ? format_time(cbest) : "-",
           std::to_string(cpreempt), std::to_string(crestarts),
           format_time(clost), cell_failed ? "had-failed" : "graded"});
    }
  }
  std::printf("FLASH-style checkpoint tuning on the simulated cloud\n");
  std::printf("(winner per cell among nfs.D.ebs / nfs.D.eph / pvfs.4.D)\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nThe runner-up margin is the story: for small or infrequent\n"
      "checkpoints the NFS server's RAM write-back makes the cheap setup\n"
      "a statistical tie with the 4-server array (~1.0x), so paying for\n"
      "dedicated PVFS2 instances is wasted money; at 60 GiB x 20 dumps\n"
      "only aggregate PVFS2 bandwidth keeps up (~2x) — Figure 1's\n"
      "no-one-size-fits-all effect on a what-if grid.\n");
  if (!chaos.empty()) {
    std::printf(
        "\nSame grid under chaos=%s (spot reclamations, periodic\n"
        "system checkpoints through the configured fs, spot billing):\n\n",
        chaos.c_str());
    std::printf("%s", chaos_table.to_string().c_str());
    std::printf(
        "\nPreemptions tax the wide PVFS2 array hardest (4 servers = 4x\n"
        "the reclaim exposure) and every restart replays work lost since\n"
        "the last durable dump, so cells whose clean winner was the\n"
        "bandwidth king can flip to a cheaper, smaller-blast-radius\n"
        "setup.\n");
    std::printf(
        "[chaos] preset=%s preemptions=%llu restarts=%llu "
        "failed_cells=%zu winner_changed=%zu\n",
        chaos.c_str(), static_cast<unsigned long long>(total_preemptions),
        static_cast<unsigned long long>(total_restarts), failed_cells,
        winner_changed);
  }
  return 0;
}
