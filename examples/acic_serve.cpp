// Concurrent ACIC query server — the production-shaped front end over
// acic::service::QueryService.  Two transports:
//
//  * stdin/stdout (default): protocol lines are read until EOF or
//    "quit", answered in parallel batches (QueryService::serve).
//  * --listen host:port: the acic::net epoll front end — framed
//    requests over TCP with backpressure, idle deadlines, bounded
//    dispatch, and graceful drain (see src/acic/net/server.hpp).
//    bench/acic_slap is the matching load generator.
//
// Usage:
//   example_acic_serve [training_db.csv] [--listen host:port]
//                      [--threads N] [--batch N] [--max-inflight N]
//                      [--deadline-us X] [--idle-ms N] [--drain-ms N]
//                      [--max-conns N] [--net-queue N] [--quick]
//                      [--demo] [--help]
//
// --max-inflight bounds admission: requests beyond N concurrently running
// ones get a typed "shed ..." response instead of queuing.  --deadline-us
// arms the per-request compute deadline ("timeout ..." responses); in
// --listen mode the clock starts when the frame arrives, so queue wait
// counts.  --quick skips PB screening and model training (identity
// ranking, empty database → fallback answers) so smoke tests and the CI
// loopback job start in milliseconds instead of minutes.
//
// Signals: SIGPIPE is ignored (a dead peer must not kill the server);
// SIGINT/SIGTERM route into the drain path — in --listen mode the
// listener closes, in-flight requests finish under the drain deadline,
// and the process exits 0; in stdin mode the blocking read is
// interrupted, the final batch is flushed, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "acic/core/ranking.hpp"
#include "acic/net/server.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"
#include "acic/service/query_service.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: example_acic_serve [training_db.csv] [--listen host:port]\n"
      "                          [--threads N] [--batch N]\n"
      "                          [--max-inflight N] [--deadline-us X]\n"
      "                          [--idle-ms N] [--drain-ms N]\n"
      "                          [--max-conns N] [--net-queue N]\n"
      "                          [--learner NAME[,NAME...]]\n"
      "                          [--quick] [--demo] [--help]\n"
      "  Serves the line-oriented ACIC query protocol from stdin across a\n"
      "  thread pool; 'help' on the stream lists the protocol verbs.\n"
      "  --listen host:port  framed-TCP front end instead of stdin\n"
      "  --max-inflight N  shed requests beyond N in flight (0 = off)\n"
      "  --deadline-us X   per-request deadline incl. queue wait (0 = off)\n"
      "  --idle-ms N       net: idle/slow-loris/write-stall deadline\n"
      "  --drain-ms N      net: drain budget after SIGTERM/SIGINT\n"
      "  --max-conns N     net: connection cap\n"
      "  --net-queue N     net: bounded dispatch queue depth\n"
      "  --learner NAMES   learner plugin(s) to train, comma-separated;\n"
      "                    the first is the primary (default: cart)\n"
      "  --quick           no PB screening / training (fallback mode)\n"
      "  SIGINT/SIGTERM drain gracefully and exit 0 in both modes.\n"
      "\n"
      "registered plugins:\n");
  for (const auto& info : acic::plugin::inventory()) {
    std::printf("  %s\n", info.summary.c_str());
  }
  for (const auto& err : acic::plugin::registration_errors()) {
    std::printf("  registration-error %s\n", err.c_str());
  }
}

// Signal routing: handlers may only touch async-signal-safe state.  In
// --listen mode they forward into Server::request_drain() (an atomic
// store plus send() on the wake socketpair); in stdin mode the unblocked
// read returns EINTR, std::getline fails, and serve() flushes the final
// batch on its way out.
std::sig_atomic_t g_stop_requested = 0;
acic::net::Server* g_server = nullptr;

void handle_stop_signal(int) {
  g_stop_requested = 1;
  if (g_server != nullptr) g_server->request_drain();
}

void install_signal_handlers() {
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: the stdin read must return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// --quick: a do-nothing ranking (identity importance, zero effects) so
/// the service starts without running the PB screening simulations.
acic::core::PbRankingResult identity_ranking() {
  acic::core::PbRankingResult r;
  for (int d = 0; d < acic::core::kNumDims; ++d) {
    r.importance.push_back(d);
    r.rank_of_each.push_back(d + 1);
    r.effects.push_back(0.0);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;

  std::string db_path;
  std::string listen_spec;
  unsigned threads = 0;  // hardware concurrency
  std::size_t batch = 64;
  bool demo = false;
  bool quick = false;
  service::ServiceOptions service_options;
  net::ServerOptions net_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_spec = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      service_options.max_in_flight =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--deadline-us" && i + 1 < argc) {
      service_options.deadline_us = std::atof(argv[++i]);
    } else if (arg == "--idle-ms" && i + 1 < argc) {
      net_options.idle_timeout_ms = std::atol(argv[++i]);
    } else if (arg == "--drain-ms" && i + 1 < argc) {
      net_options.drain_timeout_ms = std::atol(argv[++i]);
    } else if (arg == "--max-conns" && i + 1 < argc) {
      net_options.max_connections =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--net-queue" && i + 1 < argc) {
      net_options.max_queue_depth =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--learner" && i + 1 < argc) {
      service_options.learners.clear();
      std::string names = argv[++i];
      std::size_t start = 0;
      while (start <= names.size()) {
        const std::size_t comma = names.find(',', start);
        const std::string name =
            names.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (!name.empty()) service_options.learners.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (service_options.learners.empty()) {
        std::fprintf(stderr, "error: --learner needs at least one name\n");
        return 1;
      }
    } else {
      db_path = arg;
    }
  }
  net_options.workers = threads;

  install_signal_handlers();

  core::PbRankingResult ranking;
  if (quick) {
    std::fprintf(stderr, "[serve] --quick: identity ranking, no PB run\n");
    ranking = identity_ranking();
  } else {
    std::fprintf(stderr, "[serve] PB screening...\n");
    ranking = core::run_pb_ranking();
  }

  core::TrainingDatabase db;
  if (!db_path.empty()) {
    db = core::TrainingDatabase::load(db_path);
    std::fprintf(stderr, "[serve] loaded %zu shared samples from %s\n",
                 db.size(), db_path.c_str());
  } else if (quick) {
    std::fprintf(stderr,
                 "[serve] --quick: empty database (fallback answers)\n");
  } else {
    std::fprintf(stderr, "[serve] bootstrapping training database...\n");
    core::TrainingPlan plan;
    plan.dim_order = ranking.importance;
    plan.top_dims = 12;
    plan.max_samples = 300;
    core::collect_training_data(db, plan);
  }

  std::fprintf(stderr, "[serve] training models (%s)...\n",
               [&] {
                 std::string names;
                 for (const auto& n : service_options.learners) {
                   if (!names.empty()) names += ",";
                   names += n;
                 }
                 return names;
               }()
                   .c_str());
  std::optional<service::QueryService> service;
  try {
    service.emplace(std::move(db), std::move(ranking), service_options);
  } catch (const std::exception& e) {
    // e.g. a --learner typo: the registry's error lists what exists.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (demo) {
    // A mixed burst of concurrent clients: the same requests a load
    // balancer would fan in, answered as one parallel batch.
    const std::vector<std::string> burst = {
        "recommend objective=performance top_k=3 np=256 io_procs=256 "
        "interface=MPI-IO iterations=40 data=4MiB request=4MiB op=write "
        "collective=yes shared=yes",
        "recommend objective=cost top_k=2 np=64 io_procs=64 "
        "interface=POSIX iterations=1 data=1344MiB request=1MiB op=read "
        "shared=no",
        "predict config=pvfs.4.D.eph.4M np=64 io_procs=64 "
        "interface=MPI-IO iterations=2 data=256MiB request=64MiB "
        "op=read+write shared=yes",
        "rank top=5",
    };
    std::vector<std::string> requests;
    for (int repeat = 0; repeat < 8; ++repeat) {
      requests.insert(requests.end(), burst.begin(), burst.end());
    }
    const auto responses = service->handle_batch(requests, threads);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      std::printf("> %s\n%s", requests[i].c_str(), responses[i].c_str());
    }
    std::printf("> stats\n%s", service->handle("stats").c_str());
    return 0;
  }

  if (!listen_spec.empty()) {
    const auto colon = listen_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --listen expects host:port, got %s\n",
                   listen_spec.c_str());
      return 1;
    }
    net_options.host = listen_spec.substr(0, colon);
    net_options.port = static_cast<std::uint16_t>(
        std::atoi(listen_spec.c_str() + colon + 1));
    try {
      net::Server server(net_options, [&service](const net::Request& req) {
        return service->handle(req.line, req.received_at);
      });
      g_server = &server;
      if (g_stop_requested) server.request_drain();  // signal beat us here
      std::fprintf(stderr, "[serve] listening on %s:%u (framed protocol)\n",
                   net_options.host.c_str(), server.port());
      server.run();
      g_server = nullptr;
      std::fprintf(stderr, "[serve] drained; final metrics:\n%s",
                   obs::MetricsRegistry::global()
                       .snapshot()
                       .to_text("  ")
                       .c_str());
    } catch (const std::exception& e) {
      g_server = nullptr;
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  std::fprintf(stderr, "[serve] ready — protocol lines on stdin.\n");
  const std::size_t served = service->serve(std::cin, std::cout, threads,
                                           batch);
  if (g_stop_requested) {
    std::fprintf(stderr, "[serve] stop signal: final batch flushed.\n");
  }
  std::fprintf(stderr, "[serve] served %zu requests; final metrics:\n%s",
               served,
               obs::MetricsRegistry::global().snapshot().to_text("  ").c_str());
  return 0;
}
