// Concurrent ACIC query server — the production-shaped front end over
// acic::service::QueryService.  Where example_acic_query_tool answers one
// request at a time, this driver fans batches of protocol lines across a
// thread pool (QueryService::serve), so it sustains many concurrent
// clients piped through a socket relay or a batch file, and reports the
// acic::obs request metrics (per-verb counts, latency histograms,
// simulator/file-system totals) when the stream ends.
//
// Usage:
//   example_acic_serve [training_db.csv] [--threads N] [--batch N]
//                      [--max-inflight N] [--deadline-us X]
//                      [--demo] [--help]
//
// --max-inflight bounds admission: requests beyond N concurrently running
// ones get a typed "shed ..." response instead of queuing.  --deadline-us
// arms the per-request compute deadline ("timeout ..." responses).  Both
// default off (legacy unbounded behaviour).
//
// With a CSV argument the service answers from that shared database (e.g.
// the artifact written by example_crowdsourced_training); without one it
// bootstraps a fresh database on the simulated cloud.  Protocol lines are
// read from stdin until EOF or "quit"; --demo runs a scripted concurrent
// session instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "acic/core/ranking.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/service/query_service.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: example_acic_serve [training_db.csv] [--threads N] "
      "[--batch N]\n"
      "                          [--max-inflight N] [--deadline-us X] "
      "[--demo] [--help]\n"
      "  Serves the line-oriented ACIC query protocol from stdin across a\n"
      "  thread pool; 'help' on the stream lists the protocol verbs.\n"
      "  --max-inflight N  shed requests beyond N in flight (0 = off)\n"
      "  --deadline-us X   per-request compute deadline, us (0 = off)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;

  std::string db_path;
  unsigned threads = 0;  // hardware concurrency
  std::size_t batch = 64;
  bool demo = false;
  service::ServiceOptions service_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      service_options.max_in_flight =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--deadline-us" && i + 1 < argc) {
      service_options.deadline_us = std::atof(argv[++i]);
    } else {
      db_path = arg;
    }
  }

  std::fprintf(stderr, "[serve] PB screening...\n");
  auto ranking = core::run_pb_ranking();

  core::TrainingDatabase db;
  if (!db_path.empty()) {
    db = core::TrainingDatabase::load(db_path);
    std::fprintf(stderr, "[serve] loaded %zu shared samples from %s\n",
                 db.size(), db_path.c_str());
  } else {
    std::fprintf(stderr, "[serve] bootstrapping training database...\n");
    core::TrainingPlan plan;
    plan.dim_order = ranking.importance;
    plan.top_dims = 12;
    plan.max_samples = 300;
    core::collect_training_data(db, plan);
  }

  std::fprintf(stderr, "[serve] training models...\n");
  service::QueryService service(std::move(db), std::move(ranking),
                                service_options);

  if (demo) {
    // A mixed burst of concurrent clients: the same requests a load
    // balancer would fan in, answered as one parallel batch.
    const std::vector<std::string> burst = {
        "recommend objective=performance top_k=3 np=256 io_procs=256 "
        "interface=MPI-IO iterations=40 data=4MiB request=4MiB op=write "
        "collective=yes shared=yes",
        "recommend objective=cost top_k=2 np=64 io_procs=64 "
        "interface=POSIX iterations=1 data=1344MiB request=1MiB op=read "
        "shared=no",
        "predict config=pvfs.4.D.eph.4M np=64 io_procs=64 "
        "interface=MPI-IO iterations=2 data=256MiB request=64MiB "
        "op=read+write shared=yes",
        "rank top=5",
    };
    std::vector<std::string> requests;
    for (int repeat = 0; repeat < 8; ++repeat) {
      requests.insert(requests.end(), burst.begin(), burst.end());
    }
    const auto responses = service.handle_batch(requests, threads);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      std::printf("> %s\n%s", requests[i].c_str(), responses[i].c_str());
    }
    std::printf("> stats\n%s", service.handle("stats").c_str());
    return 0;
  }

  std::fprintf(stderr, "[serve] ready — protocol lines on stdin.\n");
  const std::size_t served = service.serve(std::cin, std::cout, threads,
                                           batch);
  std::fprintf(stderr, "[serve] served %zu requests; final metrics:\n%s",
               served,
               obs::MetricsRegistry::global().snapshot().to_text("  ").c_str());
  return 0;
}
