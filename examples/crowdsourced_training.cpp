// Crowdsourced, incremental training (the paper's §2 service model): the
// community contributes IOR samples over time; the shared database grows,
// the CART model is retrained, and recommendations improve — all without
// any contributor ever running the target application.
//
// This example grows the database in four increments, saves/reloads it
// through the CSV sharing format after each batch, and tracks how the
// measured quality of the top recommendation for MADbench2-64 improves,
// including a final data-aging step after a simulated platform upgrade.
#include <cstdio>
#include <filesystem>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"

namespace {

// Measured time of the top recommendation for MADbench2-64.  Through the
// engine: batches that re-recommend the same config re-use the
// measurement.
double measured_pick_time(const acic::core::TrainingDatabase& db) {
  using namespace acic;
  const auto traits = apps::madbench2(64);
  core::Acic acic_model(db, core::Objective::kPerformance);
  const auto recs = acic_model.recommend(traits, 1);
  io::RunOptions opts;
  opts.seed = 3;
  return exec::Executor::global()
      .run(exec::RunRequest{traits, recs.front().config, opts})
      .total_time;
}

}  // namespace

int main() {
  using namespace acic;

  const auto share_path =
      (std::filesystem::temp_directory_path() / "acic_shared_db.csv")
          .string();

  std::printf("PB screening (shared by all contributors)...\n");
  const auto ranking = core::run_pb_ranking();

  core::TrainingDatabase db;
  TextTable table({"batch", "db size", "EC2 spend", "pick time (MADbench2)"});
  Money cumulative = 0.0;
  for (int batch = 1; batch <= 4; ++batch) {
    core::TrainingPlan plan;
    plan.dim_order = ranking.importance;
    plan.top_dims = 9;
    plan.max_samples = 90;
    plan.seed = 100 + static_cast<std::uint64_t>(batch);
    const auto stats = core::collect_training_data(db, plan);
    cumulative += stats.money;

    // Share: persist, then reload as a downstream user would.
    db.save(share_path);
    const auto shared = core::TrainingDatabase::load(share_path);

    table.add_row({"#" + std::to_string(batch),
                   std::to_string(shared.size()),
                   format_money(cumulative),
                   format_time(measured_pick_time(shared))});
  }

  // A platform upgrade obsoletes old measurements: age out, keep newest.
  db.age_out(db.size() / 2);
  table.add_row({"after aging", std::to_string(db.size()),
                 format_money(cumulative),
                 format_time(measured_pick_time(db))});

  std::printf("\nCrowdsourced database growth vs recommendation quality\n\n%s",
              table.to_string().c_str());
  std::printf("\nShared database written to %s\n", share_path.c_str());
  std::filesystem::remove(share_path);
  return 0;
}
