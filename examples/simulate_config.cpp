// What-if runner: execute one of the evaluation applications under any
// candidate configuration on the simulated cloud and print the outcome —
// the "try before you buy" companion to the recommender.
//
// Usage:
//   example_simulate_config [app] [np] [config-label] [options]
//     app           BTIO | FLASHIO | mpiBLAST | MADbench2   (default BTIO)
//     np            process count / scale                    (default 64)
//     config-label  e.g. pvfs.4.D.eph.4M, nfs.P.ebs; "all" sweeps every
//                   candidate                                (default all)
//   options:
//     --detailed-pricing   include EBS volume-hour + per-I/O charges
//     --chaos=NAME         start from a registered fault-model preset
//                          (none, outages, brownouts, stragglers,
//                          lossy-az, spot-preempt); later flags override
//     --failures=R         transient outages per hour (default 0)
//     --brownouts=R        brownouts per hour (default 0)
//     --brownout-fraction=F  remaining capacity during a brownout (0.2)
//     --stragglers=R       slow-disk windows per hour (default 0)
//     --straggler-factor=F remaining device speed of a straggler (0.35)
//     --correlated=P       probability an outage hits every server (0)
//     --permanent=P        probability an outage is a permanent loss (0)
//     --retry              arm client deadlines + retry/backoff
//     --timeout=S          per-request deadline, sim seconds (20)
//     --attempts=N         retry budget per request (4)
//     --watchdog=S         job watchdog, sim seconds (auto when faulted)
//     --seed=N             chaos seed (default 1); same seed = same run
//     --ssd                include SSD configurations in the sweep
//     --jobs=N             host threads for the sweep (default: hardware)
//     --no-cache           bypass the run cache (every row re-simulated)
//
// The sweep goes through the execution engine: set ACIC_CACHE_DIR to
// persist results and a re-run answers from cache instead of
// re-simulating.  Cache statistics are printed to stderr so stdout
// stays byte-comparable between cold and warm runs.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"
#include "acic/obs/metrics.hpp"
#include "acic/plugin/substrates.hpp"

namespace {

using namespace acic;

io::Workload app_by_name(const std::string& name, int np) {
  if (name == "BTIO") return apps::btio(np);
  if (name == "FLASHIO") return apps::flashio(np);
  if (name == "mpiBLAST") return apps::mpiblast(np);
  if (name == "MADbench2") return apps::madbench2(np);
  throw Error("unknown application '" + name +
              "' (BTIO, FLASHIO, mpiBLAST, MADbench2)");
}

void print_exec_stats() {
  auto& reg = obs::MetricsRegistry::global();
  std::fprintf(stderr,
               "[exec] runs_executed=%.0f cache_hits=%.0f memo_hits=%.0f "
               "store_hits=%.0f dedup_collapsed=%.0f coalesced_waits=%.0f "
               "uncacheable=%.0f store_degraded=%.0f\n",
               reg.counter("exec.runs_executed").value(),
               reg.counter("exec.cache_hits").value(),
               reg.counter("exec.memo_hits").value(),
               reg.counter("exec.store_hits").value(),
               reg.counter("exec.dedup_collapsed").value(),
               reg.counter("exec.coalesced_waits").value(),
               reg.counter("exec.uncacheable_runs").value(),
               reg.gauge("exec.store.degraded").value());
  if (reg.gauge("exec.store.degraded").value() != 0.0) {
    std::fprintf(stderr,
                 "[exec] warning: run store degraded to memo-only — this "
                 "sweep's results will not persist to ACIC_CACHE_DIR\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  try {
    std::string app = "BTIO", label = "all";
    int np = 64;
    io::RunOptions opts;
    bool ssd = false;
    bool no_cache = false;
    unsigned jobs = 0;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--detailed-pricing") {
        opts.detailed_pricing = cloud::DetailedPricing{};
      } else if (arg.rfind("--chaos=", 0) == 0) {
        // Whole-model preset from the registry; an unknown name throws
        // a PluginError listing the registered presets.  Field flags
        // after this one still override individual knobs.
        opts.fault_model = plugin::fault_models().lookup(arg.substr(8)).model;
      } else if (arg.rfind("--failures=", 0) == 0) {
        opts.failures_per_hour = std::stod(arg.substr(11));
      } else if (arg.rfind("--brownouts=", 0) == 0) {
        opts.fault_model.brownouts_per_hour = std::stod(arg.substr(12));
      } else if (arg.rfind("--brownout-fraction=", 0) == 0) {
        opts.fault_model.brownout_fraction = std::stod(arg.substr(20));
      } else if (arg.rfind("--stragglers=", 0) == 0) {
        opts.fault_model.stragglers_per_hour = std::stod(arg.substr(13));
      } else if (arg.rfind("--straggler-factor=", 0) == 0) {
        opts.fault_model.straggler_factor = std::stod(arg.substr(19));
      } else if (arg.rfind("--correlated=", 0) == 0) {
        opts.fault_model.correlated_outage_probability =
            std::stod(arg.substr(13));
      } else if (arg.rfind("--permanent=", 0) == 0) {
        opts.fault_model.permanent_loss_probability =
            std::stod(arg.substr(12));
      } else if (arg == "--retry") {
        opts.tuning.retry.enabled = true;
      } else if (arg.rfind("--timeout=", 0) == 0) {
        opts.tuning.retry.request_timeout = std::stod(arg.substr(10));
      } else if (arg.rfind("--attempts=", 0) == 0) {
        opts.tuning.retry.max_attempts = std::stoi(arg.substr(11));
      } else if (arg.rfind("--watchdog=", 0) == 0) {
        opts.watchdog_sim_time = std::stod(arg.substr(11));
      } else if (arg.rfind("--seed=", 0) == 0) {
        opts.seed = std::stoull(arg.substr(7));
      } else if (arg == "--ssd") {
        ssd = true;
      } else if (arg.rfind("--jobs=", 0) == 0) {
        jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
      } else if (arg == "--no-cache") {
        no_cache = true;
      } else if (positional == 0) {
        app = arg;
        ++positional;
      } else if (positional == 1) {
        np = std::stoi(arg);
        ++positional;
      } else {
        label = arg;
        ++positional;
      }
    }

    const auto w = app_by_name(app, np);
    auto candidates = ssd ? cloud::IoConfig::enumerate_candidates_with_ssd()
                          : cloud::IoConfig::enumerate_candidates();
    if (label != "all") {
      std::vector<cloud::IoConfig> picked;
      for (const auto& c : candidates) {
        if (c.label() == label) picked.push_back(c);
      }
      if (picked.empty()) throw Error("unknown config label: " + label);
      candidates = picked;
    }

    const bool chaos = opts.fault_model.any() || opts.tuning.retry.enabled;
    std::vector<std::string> columns = {"config", "time", "cost", "I/O time",
                                        "instances", "fs requests"};
    if (chaos) {
      columns.push_back("outcome");
      columns.push_back("retries");
    }
    // The whole sweep is one deduplicating batch against the engine;
    // --no-cache swaps in a pass-through executor (fresh simulations,
    // nothing recorded), --jobs bounds the fan-out.
    exec::ExecutorOptions pass_through;
    pass_through.cache = false;
    exec::Executor uncached(std::move(pass_through));
    exec::Executor& engine =
        no_cache ? uncached : exec::Executor::global();
    std::vector<exec::RunRequest> requests;
    requests.reserve(candidates.size());
    for (const auto& cfg : candidates) {
      requests.push_back(exec::RunRequest{w, cfg, opts});
    }
    const auto results = engine.run_batch(requests, jobs, nullptr);

    TextTable t(columns);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto& r = results[i];
      std::vector<std::string> row = {
          candidates[i].label(), format_time(r.total_time),
          format_money(r.cost), format_time(r.io_time),
          std::to_string(r.num_instances), std::to_string(r.fs_requests)};
      if (chaos) {
        row.push_back(io::to_string(r.outcome));
        row.push_back(std::to_string(r.retries));
      }
      t.add_row(row);
    }
    std::printf("%s np=%d on the simulated cloud (%zu configuration%s)\n\n",
                app.c_str(), np, candidates.size(),
                candidates.size() == 1 ? "" : "s");
    std::printf("%s", t.to_string().c_str());
    print_exec_stats();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
