// What-if runner: execute one of the evaluation applications under any
// candidate configuration on the simulated cloud and print the outcome —
// the "try before you buy" companion to the recommender.
//
// Usage:
//   example_simulate_config [app] [np] [config-label] [options]
//     app           BTIO | FLASHIO | mpiBLAST | MADbench2   (default BTIO)
//     np            process count / scale                    (default 64)
//     config-label  e.g. pvfs.4.D.eph.4M, nfs.P.ebs; "all" sweeps every
//                   candidate                                (default all)
//   options:
//     --detailed-pricing   include EBS volume-hour + per-I/O charges
//     --failures=R         transient outages per hour (default 0)
//     --ssd                include SSD configurations in the sweep
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/io/runner.hpp"

namespace {

using namespace acic;

io::Workload app_by_name(const std::string& name, int np) {
  if (name == "BTIO") return apps::btio(np);
  if (name == "FLASHIO") return apps::flashio(np);
  if (name == "mpiBLAST") return apps::mpiblast(np);
  if (name == "MADbench2") return apps::madbench2(np);
  throw Error("unknown application '" + name +
              "' (BTIO, FLASHIO, mpiBLAST, MADbench2)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  try {
    std::string app = "BTIO", label = "all";
    int np = 64;
    io::RunOptions opts;
    bool ssd = false;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--detailed-pricing") {
        opts.detailed_pricing = cloud::DetailedPricing{};
      } else if (arg.rfind("--failures=", 0) == 0) {
        opts.failures_per_hour = std::stod(arg.substr(11));
      } else if (arg == "--ssd") {
        ssd = true;
      } else if (positional == 0) {
        app = arg;
        ++positional;
      } else if (positional == 1) {
        np = std::stoi(arg);
        ++positional;
      } else {
        label = arg;
        ++positional;
      }
    }

    const auto w = app_by_name(app, np);
    auto candidates = ssd ? cloud::IoConfig::enumerate_candidates_with_ssd()
                          : cloud::IoConfig::enumerate_candidates();
    if (label != "all") {
      std::vector<cloud::IoConfig> picked;
      for (const auto& c : candidates) {
        if (c.label() == label) picked.push_back(c);
      }
      if (picked.empty()) throw Error("unknown config label: " + label);
      candidates = picked;
    }

    TextTable t({"config", "time", "cost", "I/O time", "instances",
                 "fs requests"});
    for (const auto& cfg : candidates) {
      const auto r = io::run_workload(w, cfg, opts);
      t.add_row({cfg.label(), format_time(r.total_time),
                 format_money(r.cost), format_time(r.io_time),
                 std::to_string(r.num_instances),
                 std::to_string(r.fs_requests)});
    }
    std::printf("%s np=%d on the simulated cloud (%zu configuration%s)\n\n",
                app.c_str(), np, candidates.size(),
                candidates.size() == 1 ? "" : "s");
    std::printf("%s", t.to_string().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
