// The ACIC query front end — a realisation of the paper's planned
// "web-based query service" as a line-oriented tool.
//
// Usage:
//   example_acic_query_tool [training_db.csv] [--demo]
//
// With a CSV argument the service answers from that shared database
// (e.g. the artifact written by example_crowdsourced_training); without
// one it bootstraps a fresh database on the simulated cloud.  Lines read
// from stdin are protocol requests ("help" lists them); --demo (or a
// closed stdin) runs a scripted session instead.
#include <cstdio>
#include <iostream>
#include <string>

#include "acic/core/ranking.hpp"
#include "acic/service/query_service.hpp"

int main(int argc, char** argv) {
  using namespace acic;

  std::string db_path;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else {
      db_path = arg;
    }
  }

  std::fprintf(stderr, "[service] PB screening...\n");
  auto ranking = core::run_pb_ranking();

  core::TrainingDatabase db;
  if (!db_path.empty()) {
    db = core::TrainingDatabase::load(db_path);
    std::fprintf(stderr, "[service] loaded %zu shared samples from %s\n",
                 db.size(), db_path.c_str());
  } else {
    std::fprintf(stderr, "[service] bootstrapping training database...\n");
    core::TrainingPlan plan;
    plan.dim_order = ranking.importance;
    plan.top_dims = 12;
    plan.max_samples = 300;
    core::collect_training_data(db, plan);
  }

  service::QueryService service(std::move(db), std::move(ranking));

  const char* kDemo[] = {
      "stats",
      "rank top=5",
      "recommend objective=performance top_k=3 np=256 io_procs=256 "
      "interface=MPI-IO iterations=40 data=4MiB request=4MiB op=write "
      "collective=yes shared=yes",
      "recommend objective=cost top_k=3 np=64 io_procs=64 "
      "interface=POSIX iterations=1 data=1344MiB request=1MiB op=read "
      "shared=no",
      "predict config=pvfs.4.D.eph.4M np=64 io_procs=64 interface=MPI-IO "
      "iterations=2 data=256MiB request=64MiB op=read+write shared=yes",
      "recommend objective=speed",  // deliberate error
  };

  if (demo) {
    for (const char* line : kDemo) {
      std::printf("> %s\n%s", line, service.handle(line).c_str());
    }
    return 0;
  }

  std::printf("ACIC query service ready — type 'help' for commands.\n");
  std::string line;
  bool any = false;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    any = true;
    std::fputs(service.handle(line).c_str(), stdout);
    std::fflush(stdout);
  }
  if (!any) {
    // Closed stdin (e.g. launched from a script): show the demo session.
    for (const char* l : kDemo) {
      std::printf("> %s\n%s", l, service.handle(l).c_str());
    }
  }
  return 0;
}
