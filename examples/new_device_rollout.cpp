// Expandability walkthrough (paper §2 / §8): the cloud provider launches
// a new SSD storage class.  ACIC handles it by *extending* the training
// database — the old samples stay valid, a contribution batch covers the
// new device value, and the retrained model starts recommending SSD
// where it actually wins — without anyone re-profiling applications.
#include <cstdio>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"

namespace {

using namespace acic;

/// Measured time of the model's pick for `traits` over `candidates`.
/// Through the engine, so before/after models picking the same config
/// share one measurement.
std::pair<std::string, double> pick_and_measure(
    const core::Acic& acic, const io::Workload& traits,
    const std::vector<cloud::IoConfig>& candidates) {
  const auto recs = acic.recommend(traits, 1, candidates);
  io::RunOptions o;
  o.seed = 21;
  const auto r = exec::Executor::global().run(
      exec::RunRequest{traits, recs.front().config, o});
  return {recs.front().config.label(), r.total_time};
}

}  // namespace

int main() {
  using namespace acic;

  std::printf("[1/4] PB screening + initial training (no SSD yet)...\n");
  const auto ranking = core::run_pb_ranking();
  core::TrainingDatabase db;
  core::TrainingPlan plan;
  plan.dim_order = ranking.importance;
  plan.top_dims = 12;
  plan.max_samples = 350;
  core::collect_training_data(db, plan);
  const std::size_t before_size = db.size();

  // The latency-sensitive scan workload SSD should love.
  const auto traits = apps::mpiblast(64);

  core::Acic before(db, core::Objective::kPerformance);
  const auto old_candidates = cloud::IoConfig::enumerate_candidates();
  const auto new_candidates =
      cloud::IoConfig::enumerate_candidates_with_ssd();
  const auto [old_pick, old_time] =
      pick_and_measure(before, traits, old_candidates);

  std::printf(
      "[2/4] provider launches SSD instances; contributors add a batch\n"
      "      sampling the extended device range {EBS, ephemeral, SSD}...\n");
  core::TrainingPlan extension = plan;
  extension.max_samples = 250;
  extension.seed = 77;
  extension.value_overrides.entries.push_back(
      {core::kDevice, {0.0, 1.0, 2.0}});
  core::collect_training_data(db, extension);
  std::printf("      database grew %zu -> %zu samples (old data kept)\n",
              before_size, db.size());

  std::printf("[3/4] retraining and re-querying...\n");
  core::Acic after(db, core::Objective::kPerformance);
  const auto [new_pick, new_time] =
      pick_and_measure(after, traits, new_candidates);

  std::printf("[4/4] results for %s (np=%d):\n", traits.name.c_str(),
              traits.num_processes);
  TextTable t({"model", "pick", "measured time"});
  t.add_row({"before SSD", old_pick, format_time(old_time)});
  t.add_row({"after SSD", new_pick, format_time(new_time)});
  std::printf("%s\n", t.to_string().c_str());
  if (new_time < old_time) {
    std::printf("The extended model found a faster configuration "
                "(%.2fx) on the new storage class.\n",
                old_time / new_time);
  } else {
    std::printf("The extended model kept the previous choice — SSD did "
                "not pay off for this workload.\n");
  }
  return 0;
}
