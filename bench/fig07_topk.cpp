// Figure 7: accuracy enhancement from examining the top-k ACIC
// recommendations.  Users with leftover hourly-billing "residual
// resource" can try the top 1, 3 or 5 candidates; we report the best
// measured result in each prefix, against the true optimum ("all").
#include <cstdio>

#include "acic/common/table.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& db = benchsup::training_db(12, 1200);

  for (auto objective : {core::Objective::kPerformance,
                         core::Objective::kCost}) {
    core::Acic acic(db, objective);
    const bool perf = objective == core::Objective::kPerformance;
    TextTable table({"App", "NP",
                     perf ? "top1 speedup" : "top1 save",
                     perf ? "top3 speedup" : "top3 save",
                     perf ? "top5 speedup" : "top5 save",
                     perf ? "all (optimal)" : "all (optimal)"});
    for (const auto& run : apps::evaluation_suite()) {
      const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
      const double base = perf ? benchsup::baseline(ms).time
                               : benchsup::baseline(ms).cost;
      std::vector<std::string> row = {run.app, std::to_string(run.scale)};
      for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                            std::size_t{56}}) {
        const double v =
            benchsup::best_measured_of_topk(acic, run, k, objective);
        if (perf) {
          row.push_back(TextTable::num(base / v, 2) + "x");
        } else {
          row.push_back(TextTable::num(100.0 * (base - v) / base, 0) + "%");
        }
      }
      table.add_row(row);
    }
    std::printf("=== Figure 7(%s): top-k accuracy, %s objective ===\n"
                "(improvement over the baseline configuration)\n\n%s\n",
                perf ? "a" : "b", core::to_string(objective),
                table.to_string().c_str());
  }
  std::printf(
      "Expected shape (paper): top-1 already close to optimal; top-3\n"
      "captures nearly all remaining gain; little improvement beyond.\n");
  return 0;
}
