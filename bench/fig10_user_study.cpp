// Figure 10: the user study — manual configurations chosen by an
// experienced mpiBLAST user and a core developer (single pick, and
// best-of-top-3 after seeing §5.6's insights) vs ACIC, for both
// optimization goals at three scales.
#include <cstdio>

#include <string_view>

#include "acic/common/table.hpp"
#include "acic/core/manual.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& db = benchsup::training_db(12, 1200);

  for (auto objective :
       {core::Objective::kPerformance, core::Objective::kCost}) {
    core::Acic acic(db, objective);
    // The bundled low-variance ensemble, shown alongside the paper's
    // CART (§4.2 invites plugging in other learners).
    core::Acic forest(db, objective, std::string_view("forest"));
    const bool perf = objective == core::Objective::kPerformance;

    TextTable table(
        {"NP", "User", "User3", "Dev", "Dev3", "ACIC", "ACIC(forest)"});
    for (int np : {32, 64, 128}) {
      const apps::AppRun run{"mpiBLAST", np, apps::mpiblast(np)};
      const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
      const double base = benchsup::value_of(benchsup::baseline(ms),
                                             objective);
      auto improvement = [&](double v) {
        return TextTable::num(100.0 * (base - v) / base, 0) + "%";
      };
      auto measure_best = [&](const std::vector<cloud::IoConfig>& cfgs) {
        double best = 1e300;
        for (const auto& c : cfgs) {
          best = std::min(
              best, benchsup::value_of(benchsup::measure(run, c), objective));
        }
        return best;
      };
      const double user = measure_best(
          {core::user_choice(run.workload, objective)});
      const double user3 =
          measure_best(core::user_top3(run.workload, objective));
      const double dev = measure_best(
          {core::developer_choice(run.workload, objective)});
      const double dev3 =
          measure_best(core::developer_top3(run.workload, objective));
      const double acic_v = benchsup::value_of(
          benchsup::measured_top_choice(acic, run, objective), objective);
      const double forest_v = benchsup::value_of(
          benchsup::measured_top_choice(forest, run, objective), objective);
      table.add_row({std::to_string(np), improvement(user),
                     improvement(user3), improvement(dev),
                     improvement(dev3), improvement(acic_v),
                     improvement(forest_v)});
    }
    std::printf(
        "=== Figure 10 (%s objective): manual vs ACIC on mpiBLAST ===\n"
        "(improvement over baseline; User3/Dev3 = best of their top-3)\n\n"
        "%s\n",
        core::to_string(objective), table.to_string().c_str());
  }
  std::printf(
      "Expected shape (paper): ACIC consistently >= the human experts;\n"
      "the developer beats the user; top-3 manual picks narrow but do\n"
      "not close the gap.\n");
  return 0;
}
