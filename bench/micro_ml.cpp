// google-benchmark microbenchmarks for the ACIC analytics path: PB matrix
// construction, CART training/prediction on 15-feature data, kNN
// prediction, and a single end-to-end IOR simulation (the training
// primitive whose per-run cost Fig. 8 amortises).
#include <benchmark/benchmark.h>

#include "acic/common/rng.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/pbdesign.hpp"
#include "acic/ior/ior.hpp"
#include "acic/ml/cart.hpp"
#include "acic/ml/knn.hpp"

namespace {

using namespace acic;

ml::Dataset synthetic_15d(std::size_t rows) {
  Rng rng(99);
  ml::Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(15);
    for (auto& v : x) v = rng.uniform();
    const double y = 3.0 * (x[0] > 0.5) + x[3] * 2.0 +
                     (x[7] > 0.3 && x[1] < 0.7 ? 1.5 : 0.0) +
                     0.1 * rng.normal();
    d.add(std::move(x), y);
  }
  return d;
}

void BM_PbFoldoverMatrix(benchmark::State& state) {
  for (auto _ : state) {
    auto m = core::PbDesign::foldover(16);
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_PbFoldoverMatrix);

void BM_CartTrain(benchmark::State& state) {
  const auto data = synthetic_15d(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = ml::CartTree::train(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CartTrain)->Arg(200)->Arg(1000);

void BM_CartPredict(benchmark::State& state) {
  const auto data = synthetic_15d(1000);
  const auto tree = ml::CartTree::train(data);
  Rng rng(5);
  std::vector<double> x(15);
  for (auto& v : x) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(x));
  }
}
BENCHMARK(BM_CartPredict);

void BM_KnnPredict(benchmark::State& state) {
  const auto data = synthetic_15d(500);
  ml::KnnRegressor knn(5);
  knn.fit(data);
  Rng rng(6);
  std::vector<double> x(15);
  for (auto& v : x) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.predict(x));
  }
}
BENCHMARK(BM_KnnPredict);

void BM_IorTrainingRun(benchmark::State& state) {
  const auto w = ior::IorBench()
                     .tasks(32)
                     .block_size(16.0 * MiB)
                     .transfer_size(4.0 * MiB)
                     .segments(5)
                     .build();
  cloud::IoConfig cfg;
  cfg.fs = cloud::FileSystemType::kPvfs2;
  cfg.device = storage::DeviceType::kEphemeral;
  cfg.io_servers = 4;
  cfg.placement = cloud::Placement::kDedicated;
  cfg.stripe_size = 4.0 * MiB;
  for (auto _ : state) {
    const auto r = ior::run_ior(w, cfg);
    benchmark::DoNotOptimize(r.total_time);
  }
}
BENCHMARK(BM_IorTrainingRun);

}  // namespace

BENCHMARK_MAIN();
