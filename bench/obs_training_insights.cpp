// §5.6 "Observations from training experience": targeted sweeps
// reproducing each of the paper's five qualitative findings.
#include <cstdio>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/io/runner.hpp"
#include "acic/ior/ior.hpp"

namespace {

using namespace acic;

cloud::IoConfig pvfs(int servers, storage::DeviceType dev,
                     cloud::Placement place, Bytes stripe = 4.0 * MiB) {
  cloud::IoConfig c;
  c.fs = cloud::FileSystemType::kPvfs2;
  c.device = dev;
  c.io_servers = servers;
  c.placement = place;
  c.stripe_size = stripe;
  return c;
}

io::RunResult run(const io::Workload& w, const cloud::IoConfig& c,
                  double failures_per_hour = 0.0) {
  io::RunOptions o;
  o.seed = 17;
  o.failures_per_hour = failures_per_hour;
  return io::run_workload(w, c, o);
}

void obs1_parttime_with_aggregators() {
  // Obs 1: part-time beats dedicated on cost for collective (aggregator)
  // applications — the aggregator and the server share an instance.
  const auto w = apps::btio(64);  // collective writer
  const auto part = run(w, pvfs(4, storage::DeviceType::kEphemeral,
                                cloud::Placement::kPartTime));
  const auto ded = run(w, pvfs(4, storage::DeviceType::kEphemeral,
                               cloud::Placement::kDedicated));
  std::printf(
      "[obs 1] BTIO-64 (collective): part-time $%.2f vs dedicated $%.2f "
      "-> part-time is %s cost-effective\n",
      part.cost, ded.cost, part.cost < ded.cost ? "MORE" : "not");
}

void obs2_more_servers_help() {
  // Obs 2: more PVFS2 servers improve both time and cost.
  const auto w = apps::madbench2(256);
  TextTable t({"servers", "time (s)", "cost ($)"});
  double prev_time = 0.0;
  bool monotone = true;
  for (int servers : {1, 2, 4}) {
    const auto r = run(w, pvfs(servers, storage::DeviceType::kEphemeral,
                               cloud::Placement::kDedicated));
    if (prev_time > 0.0 && r.total_time > prev_time) monotone = false;
    prev_time = r.total_time;
    t.add_row({std::to_string(servers), TextTable::num(r.total_time, 1),
               TextTable::num(r.cost, 2)});
  }
  std::printf("[obs 2] MADbench2-256 over PVFS2 server counts "
              "(time should fall):\n%s        monotone: %s\n",
              t.to_string().c_str(), monotone ? "yes" : "NO");
}

void obs3_ephemeral_beats_ebs_multiserver() {
  // Obs 3: ephemeral beats EBS when more than one I/O server is used.
  const auto w = apps::mpiblast(64);
  const auto eph = run(w, pvfs(4, storage::DeviceType::kEphemeral,
                               cloud::Placement::kDedicated));
  const auto ebs = run(w, pvfs(4, storage::DeviceType::kEbs,
                               cloud::Placement::kDedicated));
  std::printf(
      "[obs 3] mpiBLAST-64, 4 servers: ephemeral %.1fs vs EBS %.1fs -> "
      "ephemeral %.2fx faster\n",
      eph.total_time, ebs.total_time, ebs.total_time / eph.total_time);
}

void obs4_nfs_for_small_posix() {
  // Obs 4: NFS works better for small POSIX I/O.
  const auto w = ior::IorBench()
                     .api("POSIX")
                     .tasks(32)
                     .block_size(4.0 * MiB)
                     .transfer_size(256.0 * KiB)
                     .segments(5)
                     .file_per_process(true)
                     .write_only()
                     .build();
  cloud::IoConfig nfs;
  nfs.fs = cloud::FileSystemType::kNfs;
  nfs.device = storage::DeviceType::kEphemeral;
  nfs.placement = cloud::Placement::kDedicated;
  nfs.stripe_size = 0.0;
  const auto n = run(w, nfs);
  const auto p = run(w, pvfs(4, storage::DeviceType::kEphemeral,
                             cloud::Placement::kDedicated));
  std::printf(
      "[obs 4] small POSIX writes: NFS %.1fs vs PVFS2x4 %.1fs -> NFS is "
      "%s\n",
      n.total_time, p.total_time,
      n.total_time < p.total_time ? "faster" : "slower");
}

void obs5_failures_matter() {
  // Obs 5: transient server-connection failures visibly stall runs
  // (~1 outage per experiment-hour was observed during training).
  const auto w = apps::flashio(64);
  const auto cfg = pvfs(2, storage::DeviceType::kEphemeral,
                        cloud::Placement::kDedicated);
  const auto calm = run(w, cfg, 0.0);
  const auto stormy = run(w, cfg, /*failures_per_hour=*/120.0);
  std::printf(
      "[obs 5] FLASHIO-64 with transient outages: %.1fs -> %.1fs "
      "(+%.0f%%); production runs must tolerate lost connections\n",
      calm.total_time, stormy.total_time,
      100.0 * (stormy.total_time - calm.total_time) / calm.total_time);
}

}  // namespace

int main() {
  std::printf("=== §5.6 observations from training experience ===\n\n");
  obs1_parttime_with_aggregators();
  obs2_more_servers_help();
  obs3_ephemeral_beats_ebs_multiserver();
  obs4_nfs_for_small_posix();
  obs5_failures_matter();
  return 0;
}
