// Table 1: the 15 exploration-space dimensions with their sampled value
// ranges and the importance rank assigned by the 32-run foldover PB
// screening (§4.1).
#include <cstdio>
#include <sstream>

#include "acic/common/table.hpp"
#include "acic/core/paramspace.hpp"
#include "support.hpp"

namespace {

std::string value_label(acic::core::Dim dim, double v) {
  using namespace acic::core;
  switch (dim) {
    case kDevice:
      return v < 0.5 ? "EBS" : "ephemeral";
    case kFileSystem:
      return v < 0.5 ? "NFS" : "PVFS2";
    case kInstanceType:
      return v < 0.5 ? "cc1.4xlarge" : "cc2.8xlarge";
    case kPlacement:
      return v < 0.5 ? "part-time" : "dedicated";
    case kInterface:
      return v < 0.5 ? "POSIX" : "MPI-IO";
    case kOpType:
      return v < 0.25 ? "read" : (v > 0.75 ? "write" : "read+write");
    case kCollective:
    case kFileSharing:
      return v < 0.5 ? "no" : "yes";
    case kStripeSize:
    case kDataSize:
    case kRequestSize:
      return acic::format_bytes(v);
    default: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v);
      return buf;
    }
  }
}

std::string values_of(const acic::core::DimensionSpec& d) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < d.values.size(); ++i) {
    if (i) os << ", ";
    os << value_label(d.dim, d.values[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  using namespace acic;

  const auto& ranking = benchsup::pb_ranking();

  TextTable table({"name", "kind", "values", "effect", "rank"});
  for (const auto& d : core::ParamSpace::dimensions()) {
    table.add_row({d.name, d.is_system ? "system" : "workload",
                   values_of(d),
                   TextTable::num(ranking.effects[size_t(d.dim)], 1),
                   std::to_string(ranking.rank_of_each[size_t(d.dim)])});
  }
  std::printf("=== Table 1: exploration space + PB importance ranking ===\n");
  std::printf("(32 foldover-PB IOR runs; N = 15, N' = 16)\n\n%s\n",
              table.to_string().c_str());
  std::printf("raw combinations across all dimensions: %.0f (paper: "
              "1,769,472; ours adds the read+write op mix)\n\n",
              core::ParamSpace::raw_combinations());
  std::printf(
      "Expected shape (paper): data size / op type / server count among\n"
      "the most influential; file sharing, total process count and\n"
      "iteration count among the least.\n");
  std::printf("Top of our ranking:");
  for (int i = 0; i < 5; ++i) {
    std::printf(" %s;",
                core::ParamSpace::dimension(
                    static_cast<core::Dim>(ranking.importance[size_t(i)]))
                    .name.c_str());
  }
  std::printf("\n");
  return 0;
}
