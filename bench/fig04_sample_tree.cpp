// Figure 4: a sample of the regression tree ACIC builds — internal nodes
// show the predictor, threshold and per-node mean/std of the target;
// leaves show the predicted improvement.  We train the cost model on the
// standard database and print the top of the tree with Table 1 feature
// names.
#include <cstdio>
#include <sstream>

#include "acic/ml/cart.hpp"
#include "support.hpp"

namespace {

/// Keep the printout to the paper's figure depth: clip the dump to the
/// first `max_lines` lines.
std::string clip(const std::string& text, int max_lines) {
  std::istringstream is(text);
  std::ostringstream os;
  std::string line;
  int n = 0;
  while (std::getline(is, line) && n++ < max_lines) os << line << "\n";
  if (n > max_lines) os << "  ... (" << "clipped)\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace acic;

  const auto& db = benchsup::training_db(12, 1200);
  const auto data = db.to_dataset(core::Objective::kCost);
  ml::CartParams params;
  params.max_depth = 4;  // figure-sized tree; the real model grows deeper
  const auto small = ml::CartTree::train(data, params);
  const auto full = ml::CartTree::train(data);

  std::printf("=== Figure 4: sample of the ACIC cost-model tree ===\n");
  std::printf("(depth-4 rendering; avg/std are the node's improvement-\n"
              " over-baseline statistics, as in the paper's figure)\n\n");
  std::printf("%s\n",
              clip(small.dump(core::Acic::feature_names()), 40).c_str());
  std::printf("full production tree: %d nodes, %d leaves, depth %d\n",
              full.node_count(), full.leaf_count(), full.depth());
  const auto counts = full.split_counts(core::kNumDims);
  std::printf("most-used predictors:");
  for (int d = 0; d < core::kNumDims; ++d) {
    if (counts[static_cast<std::size_t>(d)] > 0) {
      std::printf(" %s(%d)",
                  core::ParamSpace::dimension(static_cast<core::Dim>(d))
                      .name.c_str(),
                  counts[static_cast<std::size_t>(d)]);
    }
  }
  std::printf("\n\nExpected shape (paper): request size / file system / "
              "data size / device\nappear near the root.\n");
  return 0;
}
