// Figure 5: ACIC auto-configuration effectiveness, performance objective.
// For each of the nine application runs: the candidate spectrum
// (min / median / max), the baseline, the measured time under ACIC's top
// recommendation, and the paper's M (vs median) and B (vs baseline)
// speedup ratios.
#include <cstdio>

#include "acic/common/table.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& db = benchsup::training_db(/*top_dims=*/12,
                                         /*max_samples=*/1200);
  core::Acic acic(db, core::Objective::kPerformance);

  TextTable table({"App", "NP", "best", "median", "worst", "baseline",
                   "ACIC pick", "pick time", "M", "B"});
  double m_sum = 0.0, b_sum = 0.0;
  int n = 0;
  for (const auto& run : apps::evaluation_suite()) {
    const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
    // Paper §5.3: with co-champion predictions, report the median.
    const auto pick = benchsup::measured_top_choice(
        acic, run, core::Objective::kPerformance);
    const double med = benchsup::median_time(ms);
    const double base = benchsup::baseline(ms).time;
    const double m_ratio = med / pick.time;
    const double b_ratio = base / pick.time;
    m_sum += m_ratio;
    b_sum += b_ratio;
    ++n;
    table.add_row({run.app, std::to_string(run.scale),
                   TextTable::num(benchsup::best_time(ms).time, 1),
                   TextTable::num(med, 1),
                   TextTable::num(
                       std::max_element(ms.begin(), ms.end(),
                                        [](auto& a, auto& b) {
                                          return a.time < b.time;
                                        })
                           ->time,
                       1),
                   TextTable::num(base, 1), pick.label,
                   TextTable::num(pick.time, 1),
                   TextTable::num(m_ratio, 2) + "x",
                   TextTable::num(b_ratio, 2) + "x"});
  }
  std::printf(
      "=== Figure 5: total execution time under ACIC's recommendation ===\n"
      "(all times in seconds; M = speedup vs median candidate, B = vs "
      "baseline)\n\n%s\n",
      table.to_string().c_str());
  std::printf("average M %.2fx, average B %.2fx\n",
              m_sum / n, b_sum / n);
  std::printf(
      "Expected shape (paper): M in ~1.1-3.2x; B up to ~10.5x with an\n"
      "average around 3x; ACIC's pick sits near the bottom of each\n"
      "spectrum; one run (FLASHIO-64) has a near-optimal baseline.\n");
  return 0;
}
