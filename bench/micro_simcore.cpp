// google-benchmark microbenchmarks for the simulation kernel: raw event
// throughput, coroutine process overhead, and flow-solver scaling (the
// ablation target for the sparse max-min solver).
#include <benchmark/benchmark.h>

#include "acic/simcore/flow.hpp"
#include "acic/simcore/simulator.hpp"
#include "acic/simcore/sync.hpp"

namespace {

using namespace acic;

void BM_EventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < n; ++i) {
      s.at(static_cast<double>(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(10000);

sim::Task chained_delays(sim::Simulator& s, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await s.delay(1.0);
  }
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(chained_delays(s, hops));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(100)->Arg(1000);

sim::Task barrier_rounds(sim::Simulator& s, sim::Barrier& b, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await s.delay(0.001);
    co_await b.arrive_and_wait();
  }
}

void BM_BarrierRound(benchmark::State& state) {
  const int parties = static_cast<int>(state.range(0));
  constexpr int kRounds = 20;
  for (auto _ : state) {
    sim::Simulator s;
    sim::Barrier b(s, static_cast<std::size_t>(parties));
    for (int p = 0; p < parties; ++p) {
      s.spawn(barrier_rounds(s, b, kRounds));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * parties * kRounds);
}
BENCHMARK(BM_BarrierRound)->Arg(16)->Arg(64)->Arg(256);

void BM_FlowSolver(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    sim::FlowNetwork net(s);
    std::vector<sim::ResourceId> nics;
    for (int i = 0; i < 16; ++i) {
      nics.push_back(net.add_resource("nic", 1e9));
    }
    const auto server = net.add_resource("server", 4e8);
    for (int f = 0; f < flows; ++f) {
      net.start_flow({nics[static_cast<std::size_t>(f % 16)], server},
                     1e6 * (1 + f % 7), nullptr);
    }
    s.run();
    benchmark::DoNotOptimize(net.bytes_delivered());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowSolver)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
