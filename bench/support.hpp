// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Several figures need the same expensive artifacts: the exhaustive
// ground-truth measurement of all 9 application runs under all 56
// candidate configurations, the 32-run PB screening, and a bootstrapped
// training database.  Raw simulation results go through the execution
// engine (exec::Executor) whose persistent run store lives in the bench
// cache directory; higher-level artifacts (PB response, training
// databases) are cached there as CSV.  The directory is ACIC_CACHE_DIR
// when set, else an absolute path under the system temp directory — so
// every bench binary shares one cache no matter where it is launched
// from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/ranking.hpp"
#include "acic/core/training.hpp"

namespace acic::benchsup {

/// One measured (config, objective) cell of the ground truth.
struct Measurement {
  std::string label;  ///< IoConfig::label()
  double time = 0.0;  ///< seconds
  double cost = 0.0;  ///< dollars
};

/// "BTIO/64", "mpiBLAST/128", ...
std::string app_key(const std::string& app, int scale);

/// Exhaustive measurement of every evaluation-suite run under every
/// candidate configuration (the paper's gray-dot spectra).  Cached.
const std::map<std::string, std::vector<Measurement>>& ground_truth();

/// Look up one config's measurement (runs it fresh if absent — manual
/// policies can propose configs outside the 56-candidate grid).
Measurement measure(const apps::AppRun& run, const cloud::IoConfig& config);

/// The 32-run PB screening over the 15-D space.  Cached.
const core::PbRankingResult& pb_ranking();

/// Bootstrapped IOR training database over the top `top_dims` PB-ranked
/// dimensions.  Cached per (top_dims, max_samples, seed).
const core::TrainingDatabase& training_db(int top_dims = 12,
                                          std::size_t max_samples = 1200,
                                          std::uint64_t seed = 1);

/// Spent collecting `training_db(...)` (0 when it came from cache, the
/// bench prints both).
core::TrainingStats last_training_stats();

// --- Small helpers over measurement vectors --------------------------
const Measurement& find_measurement(const std::vector<Measurement>& ms,
                                    const std::string& label);
double median_time(const std::vector<Measurement>& ms);
double median_cost(const std::vector<Measurement>& ms);
const Measurement& best_time(const std::vector<Measurement>& ms);
const Measurement& best_cost(const std::vector<Measurement>& ms);
const Measurement& baseline(const std::vector<Measurement>& ms);

/// Objective-aware accessor.
double value_of(const Measurement& m, core::Objective objective);

/// Measured value of the best candidate among the model's top-k
/// recommendations (the paper's top-k verification protocol).
double best_measured_of_topk(const core::Acic& acic,
                             const apps::AppRun& run, std::size_t k,
                             core::Objective objective);

/// The paper's co-champion rule (§5.3): when the model predicts several
/// configurations as joint best, report the *median* measured result
/// among them.
Measurement measured_top_choice(const core::Acic& acic,
                                const apps::AppRun& run,
                                core::Objective objective);

}  // namespace acic::benchsup
