// Figure 8: prediction quality vs training-data collection cost as the
// model uses more of the PB-ranked dimensions (7..15).
//
// Left axis: cost saving (vs baseline) of ACIC's top recommendation for
// one representative run of each application.  Right axis: the dollars
// an *exhaustive* training pass over that many dimensions would cost on
// EC2 — the exponential wall that PB-guided dimension selection avoids.
#include <cstdio>

#include "acic/common/table.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& ranking = benchsup::pb_ranking();

  const apps::AppRun sample_runs[] = {
      {"BTIO", 64, apps::btio(64)},
      {"FLASHIO", 256, apps::flashio(256)},
      {"mpiBLAST", 128, apps::mpiblast(128)},
      {"MADbench2", 256, apps::madbench2(256)},
  };

  TextTable table({"#params", "BTIO-64", "FLASHIO-256", "mpiBLAST-128",
                   "MADbench2-256", "training runs", "full-train cost"});
  for (int dims = 7; dims <= core::kNumDims; ++dims) {
    // More dimensions -> more training data collected (that is exactly
    // why the cost on the right axis climbs).  We double the budget per
    // added dimension, capped where the paper also stopped collecting;
    // the full-enumeration cost column is what exhaustive coverage
    // would charge.
    const std::size_t samples =
        std::min<std::size_t>(800, 100u << (dims - 7));
    const auto& db = benchsup::training_db(dims, samples);
    core::Acic acic(db, core::Objective::kCost);

    std::vector<std::string> row = {std::to_string(dims)};
    for (const auto& run : sample_runs) {
      const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
      const auto pick =
          benchsup::measured_top_choice(acic, run, core::Objective::kCost);
      const double base = benchsup::baseline(ms).cost;
      row.push_back(
          TextTable::num(100.0 * (base - pick.cost) / base, 0) + "%");
    }
    // Average per-run cost observed in the collected database.
    double avg_cost = 0.0;
    for (const auto& s : db.samples()) avg_cost += s.cost;
    avg_cost /= static_cast<double>(db.size());
    row.push_back(std::to_string(db.size()));
    row.push_back(format_money(
        core::full_training_cost(ranking.importance, dims, avg_cost)));
    table.add_row(row);
  }
  std::printf(
      "=== Figure 8: cost saving vs number of model parameters ===\n"
      "(per-app columns: saving of ACIC's pick under the baseline;\n"
      " full-train cost: exhaustive collection over the top dimensions)\n\n"
      "%s\n",
      table.to_string().c_str());
  std::printf(
      "Expected shape (paper): usable savings already at 7 params (~$100\n"
      "of training); slow gains beyond 10 params while exhaustive\n"
      "training cost explodes toward ~$100K at 15.\n");
  return 0;
}
