// Figure 6: ACIC auto-configuration effectiveness, cost objective.
// Same protocol as Figure 5 with the monetary-cost model (Eq. 1) and the
// paper's cost-saving percentages vs the median (M) and baseline (B).
#include <cstdio>

#include "acic/common/table.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& db = benchsup::training_db(/*top_dims=*/12,
                                         /*max_samples=*/1200);
  core::Acic acic(db, core::Objective::kCost);

  TextTable table({"App", "NP", "best $", "median $", "baseline $",
                   "ACIC pick", "pick $", "M save", "B save"});
  for (const auto& run : apps::evaluation_suite()) {
    const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
    // Paper §5.3: with co-champion predictions, report the median.
    const auto pick =
        benchsup::measured_top_choice(acic, run, core::Objective::kCost);
    const double med = benchsup::median_cost(ms);
    const double base = benchsup::baseline(ms).cost;
    table.add_row(
        {run.app, std::to_string(run.scale),
         TextTable::num(benchsup::best_cost(ms).cost, 2),
         TextTable::num(med, 2), TextTable::num(base, 2), pick.label,
         TextTable::num(pick.cost, 2),
         TextTable::num(100.0 * (med - pick.cost) / med, 0) + "%",
         TextTable::num(100.0 * (base - pick.cost) / base, 0) + "%"});
  }
  std::printf(
      "=== Figure 6: total monetary cost under ACIC's recommendation ===\n"
      "(M save = saving vs median candidate, B save = vs baseline)\n\n%s\n",
      table.to_string().c_str());
  std::printf(
      "Expected shape (paper): M savings 23-67%%; B savings up to 89%%\n"
      "(average ~53%%), with one negative-saving exception where the\n"
      "baseline is near-optimal (FLASHIO-64).\n");
  return 0;
}
