// acic_slap — chaos load generator for the acic::net framed front end
// (the drizzleslap of this codebase).  Ramps concurrent connections
// against a running `example_acic_serve --listen`, mixes protocol verbs,
// and — because an overload story that was never exercised is a slogan,
// not a property — deliberately misbehaves: every Nth connection is a
// chaos client that sends garbage bytes, disconnects mid-frame,
// half-closes after its request, or drips one byte at a time like a
// slow loris.  The server must answer every well-formed request with a
// typed response (ok/error/shed/timeout), survive every chaos client,
// and never hang or crash.
//
// Usage:
//   acic_slap --port N [--host 127.0.0.1] [--ramp 1,4,16]
//             [--requests 25] [--chaos] [--chaos-every 4]
//             [--slow-bps 64] [--timeout-ms 10000] [--seed 1]
//             [--expect-drain] [--verbose]
//
// Output: per-step and total tallies (sent / answered by type) plus
// latency percentiles.  Exit status 0 when every normal request was
// answered with a typed response; nonzero otherwise.  --expect-drain
// tolerates responses cut off by a server drain (the SIGTERM-mid-ramp
// CI job sends the signal while a ramp is in flight, so tail requests
// legitimately see EOF instead of an answer).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "acic/net/client.hpp"
#include "acic/net/frame.hpp"

namespace {

using acic::net::BlockingClient;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<int> ramp = {1, 4, 16};
  int requests_per_conn = 25;
  bool chaos = false;
  int chaos_every = 4;  ///< every Nth connection misbehaves
  int slow_bps = 64;
  long timeout_ms = 10000;
  std::uint64_t seed = 1;
  bool expect_drain = false;
  bool verbose = false;
};

enum class ChaosKind { kNone, kGarbage, kMidFrame, kHalfClose, kSlowByte };

const char* chaos_name(ChaosKind k) {
  switch (k) {
    case ChaosKind::kGarbage: return "garbage";
    case ChaosKind::kMidFrame: return "midframe";
    case ChaosKind::kHalfClose: return "halfclose";
    case ChaosKind::kSlowByte: return "slowbyte";
    default: return "normal";
  }
}

/// One worker thread's tally; merged single-threaded after join.
struct Tally {
  long sent = 0;
  long ok = 0, error = 0, shed = 0, timeout = 0, other = 0;
  long no_response = 0;       ///< sent but no frame back (EOF/timeout)
  long connect_failures = 0;
  long chaos_clients = 0;
  long chaos_survived = 0;  ///< server reacted sanely (typed error or close)
  std::vector<double> latencies_us;

  void merge(const Tally& t) {
    sent += t.sent;
    ok += t.ok;
    error += t.error;
    shed += t.shed;
    timeout += t.timeout;
    other += t.other;
    no_response += t.no_response;
    connect_failures += t.connect_failures;
    chaos_clients += t.chaos_clients;
    chaos_survived += t.chaos_survived;
    latencies_us.insert(latencies_us.end(), t.latencies_us.begin(),
                        t.latencies_us.end());
  }
};

const char* kVerbs[] = {
    "stats",
    "rank top=5",
    "help",
    "recommend objective=performance top_k=3 np=64 io_procs=64 "
    "interface=MPI-IO iterations=4 data=4MiB request=1MiB op=write "
    "collective=yes shared=yes",
    "recommend objective=cost top_k=2 np=16 io_procs=16 interface=POSIX "
    "iterations=1 data=64MiB request=4MiB op=read shared=no",
};

void classify(const std::string& response, Tally& tally) {
  if (response.rfind("ok", 0) == 0) {
    tally.ok++;
  } else if (response.rfind("error", 0) == 0) {
    tally.error++;
  } else if (response.rfind("shed", 0) == 0) {
    tally.shed++;
  } else if (response.rfind("timeout", 0) == 0) {
    tally.timeout++;
  } else {
    tally.other++;
  }
}

void run_normal_client(const Options& opt, std::mt19937_64& rng,
                       Tally& tally) {
  BlockingClient client;
  if (!client.connect(opt.host, opt.port, opt.timeout_ms)) {
    tally.connect_failures++;
    return;
  }
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kVerbs) - 1);
  for (int r = 0; r < opt.requests_per_conn; ++r) {
    const char* verb = kVerbs[pick(rng)];
    const auto started = std::chrono::steady_clock::now();
    if (!client.send_request(verb, opt.timeout_ms)) {
      tally.no_response++;  // connection died under us (drain or fault)
      return;
    }
    tally.sent++;
    const auto response = client.read_response(opt.timeout_ms);
    if (!response) {
      tally.no_response++;
      return;
    }
    tally.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - started)
            .count());
    classify(*response, tally);
  }
}

void run_chaos_client(const Options& opt, ChaosKind kind,
                      std::mt19937_64& rng, Tally& tally) {
  tally.chaos_clients++;
  BlockingClient client;
  if (!client.connect(opt.host, opt.port, opt.timeout_ms)) {
    tally.connect_failures++;
    return;
  }
  switch (kind) {
    case ChaosKind::kGarbage: {
      // Not even close to a frame.  Expect one typed error, then close.
      std::string junk(128, '\0');
      for (auto& c : junk) {
        c = static_cast<char>(rng() & 0xFF);
      }
      if (junk[0] == static_cast<char>(0xAC)) junk[0] = 'X';
      (void)client.send_raw(junk);
      const auto response = client.read_response(opt.timeout_ms);
      // Either a typed "error net ..." frame or an immediate close is a
      // sane reaction; hanging or crashing is not.
      if (!response) {
        const bool clean = client.last_error() == "eof" ||
                           client.last_error().rfind("recv", 0) == 0;
        if (clean) tally.chaos_survived++;
      } else {
        if (response->rfind("error", 0) == 0) tally.chaos_survived++;
      }
      break;
    }
    case ChaosKind::kMidFrame: {
      // A header promising 512 bytes, then half of them, then RST.
      std::string frame = acic::net::encode_frame(std::string(512, 'x'));
      (void)client.send_raw(frame.substr(0, frame.size() / 2));
      client.close();
      tally.chaos_survived++;  // nothing to observe; the server must cope
      break;
    }
    case ChaosKind::kHalfClose: {
      // One valid request, shutdown(SHUT_WR) — the response must still
      // arrive on the intact read side.
      if (!client.send_request("stats", opt.timeout_ms)) break;
      client.half_close();
      const auto response = client.read_response(opt.timeout_ms);
      if (response && response->rfind("ok", 0) == 0) {
        tally.chaos_survived++;
      }
      break;
    }
    case ChaosKind::kSlowByte: {
      // A valid small frame, dripped at ~slow_bps bytes/second.  If the
      // server's idle budget is generous enough it answers; if not, it
      // must disconnect us — never sit on the slot forever.
      const std::string frame = acic::net::encode_frame("help");
      const long pause_ms =
          opt.slow_bps > 0 ? std::max(1L, 1000L / opt.slow_bps) : 1;
      if (!client.send_raw(frame, 1, pause_ms)) {
        tally.chaos_survived++;  // kicked mid-drip: the loris defense
        break;
      }
      const auto response = client.read_response(opt.timeout_ms);
      if (response) {
        tally.chaos_survived++;  // answered: we were within budget
      } else if (client.last_error() == "eof" ||
                 client.last_error().rfind("recv", 0) == 0) {
        tally.chaos_survived++;  // disconnected: also fine
      }
      break;
    }
    case ChaosKind::kNone:
      break;
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void print_usage() {
  std::printf(
      "usage: acic_slap --port N [--host H] [--ramp 1,4,16]\n"
      "                 [--requests N] [--chaos] [--chaos-every K]\n"
      "                 [--slow-bps N] [--timeout-ms N] [--seed S]\n"
      "                 [--expect-drain] [--verbose]\n");
}

std::vector<int> parse_ramp(const std::string& spec) {
  std::vector<int> ramp;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int v = std::atoi(tok.c_str());
    if (v > 0) ramp.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ramp;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      opt.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      opt.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--ramp" && i + 1 < argc) {
      opt.ramp = parse_ramp(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      opt.requests_per_conn = std::atoi(argv[++i]);
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--chaos-every" && i + 1 < argc) {
      opt.chaos_every = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--slow-bps" && i + 1 < argc) {
      opt.slow_bps = std::atoi(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      opt.timeout_ms = std::atol(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--expect-drain") {
      opt.expect_drain = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }
  if (opt.port == 0 || opt.ramp.empty()) {
    print_usage();
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);  // a draining server mid-send is routine

  Tally total;
  const auto bench_started = std::chrono::steady_clock::now();
  int chaos_cursor = 0;
  for (std::size_t step = 0; step < opt.ramp.size(); ++step) {
    const int conns = opt.ramp[step];
    std::vector<Tally> tallies(static_cast<std::size_t>(conns));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      ChaosKind kind = ChaosKind::kNone;
      if (opt.chaos && (c % opt.chaos_every) == opt.chaos_every - 1) {
        // Cycle through the four chaos personalities deterministically.
        constexpr ChaosKind kKinds[] = {
            ChaosKind::kGarbage, ChaosKind::kMidFrame,
            ChaosKind::kHalfClose, ChaosKind::kSlowByte};
        kind = kKinds[chaos_cursor++ % 4];
      }
      threads.emplace_back([&opt, &tallies, c, kind, step] {
        std::mt19937_64 rng(opt.seed + step * 1000 +
                            static_cast<std::uint64_t>(c));
        if (kind == ChaosKind::kNone) {
          run_normal_client(opt, rng, tallies[static_cast<std::size_t>(c)]);
        } else {
          run_chaos_client(opt, kind, rng,
                           tallies[static_cast<std::size_t>(c)]);
        }
        if (opt.verbose) {
          std::fprintf(stderr, "[slap] conn %d (%s) done\n", c,
                       chaos_name(kind));
        }
      });
    }
    for (auto& t : threads) t.join();
    Tally step_tally;
    for (const auto& t : tallies) step_tally.merge(t);
    std::printf(
        "[slap] step %zu: conns=%d sent=%ld ok=%ld error=%ld shed=%ld "
        "timeout=%ld no_response=%ld connect_failures=%ld chaos=%ld/%ld\n",
        step + 1, conns, step_tally.sent, step_tally.ok, step_tally.error,
        step_tally.shed, step_tally.timeout, step_tally.no_response,
        step_tally.connect_failures, step_tally.chaos_survived,
        step_tally.chaos_clients);
    total.merge(step_tally);
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_started)
          .count();
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const long answered =
      total.ok + total.error + total.shed + total.timeout + total.other;
  std::printf("[slap] total: sent=%ld answered=%ld (ok=%ld error=%ld "
              "shed=%ld timeout=%ld other=%ld) no_response=%ld "
              "connect_failures=%ld chaos=%ld/%ld wall=%.2fs rps=%.0f\n",
              total.sent, answered, total.ok, total.error, total.shed,
              total.timeout, total.other, total.no_response,
              total.connect_failures, total.chaos_survived,
              total.chaos_clients, wall_s,
              wall_s > 0 ? static_cast<double>(answered) / wall_s : 0.0);
  if (!total.latencies_us.empty()) {
    std::printf("[slap] latency_us: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
                percentile(total.latencies_us, 0.50),
                percentile(total.latencies_us, 0.90),
                percentile(total.latencies_us, 0.99),
                total.latencies_us.back());
  }

  // Exit status: every normal request answered with a typed response.
  // Under --expect-drain a SIGTERM cut the run short on purpose, so
  // EOF-instead-of-answer on the tail is the contract, not a failure —
  // but the server must still have answered *something* overall.
  if (opt.expect_drain) {
    return answered > 0 ? 0 : 1;
  }
  if (total.no_response > 0 || total.connect_failures > 0) return 1;
  if (total.chaos_clients > 0 && total.chaos_survived < total.chaos_clients) {
    return 1;
  }
  return 0;
}
