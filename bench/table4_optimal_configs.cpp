// Table 4: the measured-optimal performance configuration for each of
// the nine application executions, from exhaustive evaluation of all 56
// candidates — the paper's "no one-size-fits-all" evidence.
#include <cstdio>
#include <set>

#include "acic/common/table.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();

  TextTable table({"Application", "NP", "optimal config", "time",
                   "2nd-best x", "co-optimal (<=5%)", "NFS co-opt?"});
  std::set<std::string> unique_optima;
  for (const auto& run : apps::evaluation_suite()) {
    const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
    const auto& best = benchsup::best_time(ms);
    double second = 1e300;
    int co_optimal = 0;
    bool nfs_co_optimal = false;
    for (const auto& m : ms) {
      if (m.label != best.label && m.time < second) second = m.time;
      if (m.time <= best.time * 1.05) {
        ++co_optimal;
        if (m.label.rfind("nfs", 0) == 0) nfs_co_optimal = true;
      }
    }
    unique_optima.insert(best.label);
    table.add_row({run.app, std::to_string(run.scale), best.label,
                   format_time(best.time),
                   TextTable::num(second / best.time, 2),
                   std::to_string(co_optimal),
                   nfs_co_optimal ? "yes" : "no"});
  }
  std::printf("=== Table 4: optimal performance configurations ===\n\n%s\n",
              table.to_string().c_str());
  std::printf("unique strict optima across the 9 runs: %zu (paper: 7)\n",
              unique_optima.size());
  std::printf(
      "Expected shape (paper): several distinct optima; NFS wins for the\n"
      "small-write runs, multi-server PVFS2 over ephemeral disks for the\n"
      "data-heavy ones.  Our simulator's optima come in near-tie sets (see\n"
      "the 2nd-best and co-optimal columns): the NFS setups are co-optimal\n"
      "exactly for the small-write runs, and on real multi-tenant hardware\n"
      "those near-ties break arbitrarily — which is plausibly where the\n"
      "paper's 7-of-9 distinct winners come from.\n");
  return 0;
}
