// Ablation benches for the substrate design choices DESIGN.md calls out:
//
//  (a) the NFS server write-back cache — disabling it should erase NFS's
//      edge on bursty checkpoint writers (the mechanism behind the
//      paper's NFS-optimal cells in Table 4);
//  (b) PVFS2's per-stripe CPU cost — zeroing it should collapse the
//      64 KiB vs 4 MiB stripe-size distinction for large transfers;
//  (c) multi-tenant jitter — the configuration *ranking* should be
//      stable across jitter seeds (otherwise ACIC would be learning
//      noise).
#include <cstdio>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/io/runner.hpp"

namespace {

using namespace acic;

io::RunResult run(const io::Workload& w, const cloud::IoConfig& c,
                  const fs::FsTuning& tuning, std::uint64_t seed = 9) {
  io::RunOptions o;
  o.seed = seed;
  o.tuning = tuning;
  return io::run_workload(w, c, o);
}

void ablate_nfs_cache() {
  const auto w = apps::flashio(64);
  cloud::IoConfig nfs = cloud::IoConfig::baseline();
  cloud::IoConfig pvfs;
  pvfs.fs = cloud::FileSystemType::kPvfs2;
  pvfs.device = storage::DeviceType::kEphemeral;
  pvfs.io_servers = 4;
  pvfs.placement = cloud::Placement::kDedicated;
  pvfs.stripe_size = 4.0 * MiB;

  TextTable t({"write-back cache", "NFS baseline (s)", "PVFS2 x4 (s)",
               "NFS wins?"});
  for (double fraction : {0.5, 0.0}) {
    fs::FsTuning tuning;
    tuning.nfs_cache_fraction = fraction;
    const auto n = run(w, nfs, tuning);
    const auto p = run(w, pvfs, tuning);
    t.add_row({fraction > 0 ? "on" : "off",
               TextTable::num(n.total_time, 1),
               TextTable::num(p.total_time, 1),
               n.total_time < p.total_time ? "yes" : "no"});
  }
  std::printf("[ablation a] NFS write-back cache on FLASHIO-64:\n%s\n",
              t.to_string().c_str());
}

void ablate_stripe_cpu() {
  const auto w = apps::mpiblast(64);
  cloud::IoConfig fine, coarse;
  fine.fs = coarse.fs = cloud::FileSystemType::kPvfs2;
  fine.device = coarse.device = storage::DeviceType::kEphemeral;
  fine.io_servers = coarse.io_servers = 4;
  fine.placement = coarse.placement = cloud::Placement::kDedicated;
  fine.stripe_size = 64.0 * KiB;
  coarse.stripe_size = 4.0 * MiB;

  TextTable t({"per-stripe cpu", "64 KiB stripe (s)", "4 MiB stripe (s)",
               "gap"});
  for (double scale : {1.0, 0.0}) {
    fs::FsTuning tuning;
    tuning.pvfs_per_stripe_cpu *= scale;
    const auto f = run(w, fine, tuning);
    const auto c = run(w, coarse, tuning);
    t.add_row({scale > 0 ? "default" : "zeroed",
               TextTable::num(f.total_time, 1),
               TextTable::num(c.total_time, 1),
               TextTable::num(f.total_time / c.total_time, 2) + "x"});
  }
  std::printf("[ablation b] PVFS2 stripe-splitting cost on mpiBLAST-64:\n%s\n",
              t.to_string().c_str());
}

void ablate_jitter_stability() {
  const auto w = apps::madbench2(64);
  cloud::IoConfig good;  // known-good: pvfs.4.D.eph
  good.fs = cloud::FileSystemType::kPvfs2;
  good.device = storage::DeviceType::kEphemeral;
  good.io_servers = 4;
  good.placement = cloud::Placement::kDedicated;
  good.stripe_size = 4.0 * MiB;
  const auto bad = cloud::IoConfig::baseline();  // known-bad for this app

  int stable = 0;
  const int kSeeds = 10;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = run(w, good, fs::FsTuning{}, seed);
    const auto b = run(w, bad, fs::FsTuning{}, seed);
    stable += g.total_time < b.total_time;
  }
  std::printf(
      "[ablation c] MADbench2-64 ranking (pvfs.4.D.eph < nfs.D.ebs) held "
      "under %d/%d jitter seeds\n\n",
      stable, kSeeds);
}

}  // namespace

int main() {
  std::printf("=== substrate design-choice ablations ===\n\n");
  ablate_nfs_cache();
  ablate_stripe_cpu();
  ablate_jitter_stability();
  return 0;
}
