// google-benchmark microbenchmarks for the acic::obs metrics layer: the
// counter/histogram hot path that every served request crosses (so a
// regression here is a regression in request latency), registry lookup
// cost (why handles are hoisted out of hot loops), and snapshotting.
#include <benchmark/benchmark.h>

#include "acic/obs/metrics.hpp"

namespace {

using namespace acic;

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.latency_us");
  double v = 0.5;
  for (auto _ : state) {
    hist.observe(v);
    v = v < 1e6 ? v * 1.7 : 0.5;  // sweep across buckets
    benchmark::DoNotOptimize(&hist);
  }
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4);

void BM_RegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.counter("bench.lookup");
  for (auto _ : state) {
    auto& c = registry.counter("bench.lookup");
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_ScopedTimer(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.timer_us");
  for (auto _ : state) {
    obs::Timer timer(hist);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_ScopedTimer);

void BM_Snapshot(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.counter("bench.c" + std::to_string(i)).add(i);
  }
  for (int i = 0; i < 8; ++i) {
    registry.histogram("bench.h" + std::to_string(i)).observe(i);
  }
  for (auto _ : state) {
    auto snap = registry.snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
}
BENCHMARK(BM_Snapshot);

}  // namespace

BENCHMARK_MAIN();
