// Pluggable-learner comparison (§4.2: "ACIC is implemented in the way
// that different learning algorithms can be easily plugged in").  Trains
// CART, a bagged forest, kNN and a linear baseline on the same database
// and compares the measured quality of their picks across the nine
// evaluation runs.
#include <cstdio>
#include <functional>
#include <memory>

#include "acic/common/table.hpp"
#include "acic/ml/knn.hpp"
#include "acic/plugin/substrates.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& db = benchsup::training_db(12, 1200);

  struct Entry {
    const char* name;
    core::Acic::LearnerFactory factory;
  };
  const Entry learners[] = {
      {"CART", nullptr},
      {"forest", [] { return plugin::make_learner("forest"); }},
      // k=7 instead of the registered default: a custom hyperparameter
      // the registry's stock factory does not expose.
      {"kNN", [] { return std::make_unique<ml::KnnRegressor>(7); }},
      {"linear", [] { return plugin::make_learner("linear"); }},
  };

  for (auto objective :
       {core::Objective::kPerformance, core::Objective::kCost}) {
    TextTable table({"learner", "avg improvement vs median",
                     "avg improvement vs baseline", "worst-case run"});
    for (const auto& entry : learners) {
      core::Acic acic(db, objective, entry.factory);
      double m_sum = 0.0, b_sum = 0.0, worst = 1e300;
      int n = 0;
      for (const auto& run : apps::evaluation_suite()) {
        const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
        const auto pick = benchsup::measured_top_choice(acic, run, objective);
        const double v = benchsup::value_of(pick, objective);
        const double med = objective == core::Objective::kPerformance
                               ? benchsup::median_time(ms)
                               : benchsup::median_cost(ms);
        const double base =
            benchsup::value_of(benchsup::baseline(ms), objective);
        m_sum += med / v;
        b_sum += base / v;
        worst = std::min(worst, base / v);
        ++n;
      }
      table.add_row({entry.name, TextTable::num(m_sum / n, 2) + "x",
                     TextTable::num(b_sum / n, 2) + "x",
                     TextTable::num(worst, 2) + "x"});
    }
    std::printf("=== pluggable learners, %s objective ===\n\n%s\n",
                core::to_string(objective), table.to_string().c_str());
  }
  std::printf(
      "Reading: the bagged forest is the strongest and most stable pick\n"
      "(single CART carries noticeable variance on a sparse database —\n"
      "compare the worst-case column).  kNN and even the linear baseline\n"
      "do respectably on *top-1 selection*: improvement is broadly\n"
      "monotone in server count and device class, so coarse models can\n"
      "still point at a good corner even when their absolute predictions\n"
      "are poor.  The paper's choice of CART optimises interpretability\n"
      "(Fig. 4), not worst-case pick quality.\n");
  return 0;
}
