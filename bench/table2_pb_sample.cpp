// Table 2: the paper's worked Plackett–Burman example — N = 5 parameters
// screened with N' = 8 runs.  We regenerate the same cyclic design,
// apply the paper's published per-run performance numbers, and must get
// the paper's exact effects (40, 4, 48, 152, 28) and ranks (3 5 2 1 4).
#include <cstdio>
#include <vector>

#include "acic/common/table.hpp"
#include "acic/core/pbdesign.hpp"

int main() {
  using namespace acic;

  const auto design = core::PbDesign::matrix(8);
  // Performance column from the paper's Table 2.
  const std::vector<double> response = {19, 21, 2, 11, 72, 100, 8, 3};
  const auto effects = core::PbDesign::effects(design, response, 5);
  const auto ranks = core::PbDesign::rank_of_each(effects);

  TextTable table({"row", "A", "B", "C", "D", "E", "Perf."});
  for (std::size_t r = 0; r < design.size(); ++r) {
    std::vector<std::string> row = {std::to_string(r + 1)};
    for (int c = 0; c < 5; ++c) {
      row.push_back(design[r][size_t(c)] > 0 ? "+1" : "-1");
    }
    row.push_back(TextTable::num(response[r], 0));
    table.add_row(row);
  }
  std::vector<std::string> eff_row = {"Effect"};
  std::vector<std::string> rank_row = {"Rank"};
  for (int c = 0; c < 5; ++c) {
    eff_row.push_back(TextTable::num(std::abs(effects[size_t(c)]), 0));
    rank_row.push_back(std::to_string(ranks[size_t(c)]));
  }
  eff_row.push_back("");
  rank_row.push_back("");
  table.add_row(eff_row);
  table.add_row(rank_row);

  std::printf("=== Table 2: sample PB design (N = 5, N' = 8) ===\n\n%s\n",
              table.to_string().c_str());
  std::printf("paper: effects 40 4 48 152 28, ranks 3 5 2 1 4\n");
  return 0;
}
