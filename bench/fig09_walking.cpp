// Figure 9: comparing the three prediction approaches — random walk
// (10 random dimension orders, with min/max spread), PB-guided space
// walking, and the CART model — by cost saving under the baseline.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "acic/common/rng.hpp"
#include "acic/common/table.hpp"
#include "acic/core/walker.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  const auto& gt = benchsup::ground_truth();
  const auto& ranking = benchsup::pb_ranking();
  const auto pb_order =
      core::SpaceWalker::system_dims_ranked(ranking.importance);
  const auto& db = benchsup::training_db(12, 1200);
  core::Acic acic(db, core::Objective::kCost);

  TextTable table({"App", "NP", "random walk (min..max)", "PB walk",
                   "CART"});
  for (const auto& run : apps::evaluation_suite()) {
    const auto& ms = gt.at(benchsup::app_key(run.app, run.scale));
    const double base = benchsup::baseline(ms).cost;
    auto saving = [&](double cost) {
      return 100.0 * (base - cost) / base;
    };
    // Walk probes are application-shaped test runs: ground-truth value
    // plus multi-tenant re-measurement noise (a walker sees each config
    // once; the CART model averages noise over its training set — the
    // asymmetry the paper's comparison is about).  The true (noise-free)
    // measurement scores the final pick.
    auto noisy_probe = [&](std::uint64_t trial) {
      return [&, trial](const cloud::IoConfig& cfg) {
        Rng noise(trial * 7919 +
                  std::hash<std::string>{}(cfg.label()));
        return benchsup::find_measurement(ms, cfg.label()).cost *
               noise.lognormal_jitter(0.06);
      };
    };
    auto truth_of = [&](const cloud::IoConfig& cfg) {
      return benchsup::find_measurement(ms, cfg.label()).cost;
    };

    double rw_min = 1e300, rw_max = -1e300, rw_sum = 0.0;
    const int kRandomTrials = 10;
    for (int t = 0; t < kRandomTrials; ++t) {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      const auto r =
          core::SpaceWalker::random_walk(noisy_probe(400 + t), rng);
      const double s = saving(truth_of(r.best));
      rw_min = std::min(rw_min, s);
      rw_max = std::max(rw_max, s);
      rw_sum += s;
    }
    auto pb = core::SpaceWalker::walk(noisy_probe(1), pb_order);
    pb.best_measure = truth_of(pb.best);
    const double cart_cost =
        benchsup::measured_top_choice(acic, run, core::Objective::kCost)
            .cost;

    table.add_row(
        {run.app, std::to_string(run.scale),
         TextTable::num(rw_sum / kRandomTrials, 0) + "% (" +
             TextTable::num(rw_min, 0) + ".." + TextTable::num(rw_max, 0) +
             "%)",
         TextTable::num(saving(pb.best_measure), 0) + "%",
         TextTable::num(saving(cart_cost), 0) + "%"});
  }
  std::printf(
      "=== Figure 9: random walk vs PB-guided walk vs CART ===\n"
      "(cost saving under the baseline configuration)\n\n%s\n",
      table.to_string().c_str());
  std::printf(
      "Expected shape (paper): CART best and most consistent; PB-guided\n"
      "walking close behind; random walking inferior and erratic (wide\n"
      "min..max spread).\n"
      "Measured nuance: with probes that run the *actual application*,\n"
      "PB-guided walking is extremely competitive -- but each query spends\n"
      "~10-15 fresh application runs, while the CART answer costs nothing\n"
      "beyond the shared, reusable IOR database.  Random ordering remains\n"
      "erratic, which is the paper's point about PB guidance.\n");
  return 0;
}
