// Figure 1: execution time and monetary cost of NPB BTIO under six named
// I/O configurations as the process count grows — the paper's motivating
// "no single configuration excels" picture.
//
// Series: nfs.D.eph, nfs.P.eph, pvfs.1.D.eph, pvfs.2.D.eph, pvfs.4.D.eph,
// pvfs.4.P.eph, over 16..121 processes (BT requires square counts).
#include <cstdio>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/common/table.hpp"
#include "acic/io/runner.hpp"
#include "support.hpp"

int main() {
  using namespace acic;

  auto make = [](cloud::FileSystemType fs, int servers,
                 cloud::Placement place) {
    cloud::IoConfig c;
    c.fs = fs;
    c.device = storage::DeviceType::kEphemeral;
    c.io_servers = servers;
    c.placement = place;
    c.stripe_size = fs == cloud::FileSystemType::kPvfs2 ? 4.0 * MiB : 0.0;
    return c;
  };
  const std::vector<cloud::IoConfig> configs = {
      make(cloud::FileSystemType::kNfs, 1, cloud::Placement::kDedicated),
      make(cloud::FileSystemType::kNfs, 1, cloud::Placement::kPartTime),
      make(cloud::FileSystemType::kPvfs2, 1, cloud::Placement::kDedicated),
      make(cloud::FileSystemType::kPvfs2, 2, cloud::Placement::kDedicated),
      make(cloud::FileSystemType::kPvfs2, 4, cloud::Placement::kDedicated),
      make(cloud::FileSystemType::kPvfs2, 4, cloud::Placement::kPartTime),
  };
  const std::vector<int> scales = {16, 36, 64, 81, 100, 121};

  std::vector<std::string> header = {"np"};
  for (const auto& c : configs) header.push_back(c.label());
  TextTable time_table(header), cost_table(header);

  for (int np : scales) {
    const auto w = apps::btio(np);
    std::vector<std::string> trow = {std::to_string(np)};
    std::vector<std::string> crow = {std::to_string(np)};
    for (const auto& cfg : configs) {
      io::RunOptions o;
      o.seed = 42;
      const auto r = io::run_workload(w, cfg, o);
      trow.push_back(TextTable::num(r.total_time, 1));
      crow.push_back(TextTable::num(r.cost, 3));
    }
    time_table.add_row(trow);
    cost_table.add_row(crow);
  }

  std::printf("=== Figure 1(a): BTIO total execution time (s) ===\n%s\n",
              time_table.to_string().c_str());
  std::printf("=== Figure 1(b): BTIO total cost ($) ===\n%s\n",
              cost_table.to_string().c_str());
  std::printf(
      "Expected shape (paper): configurations cross over with scale; no\n"
      "single series dominates both charts at all process counts.\n");
  return 0;
}
