// Machine-readable performance gate (`bench/perf_gate`).
//
// Measures the two hot paths this repo's ROADMAP tracks — batch model
// prediction over the full 504-point (9 applications x 56 candidate
// configs) space, and simulator event throughput — and emits a stable
// JSON document (`BENCH_perf.json`) that CI compares against the
// checked-in baseline `bench/perf_baseline.json` via
// `tools/perf/check_perf_gate.py`.
//
// Two properties are hard gates inside the binary itself (exit 1, no
// tolerance band):
//   * flat-vs-pointer parity — every batch prediction must be
//     bit-identical to the pointer tree's per-call answer;
//   * the batch fast path must beat the legacy per-call baseline (a
//     std::vector allocation + virtual pointer-tree walk per row, which
//     is exactly what core::Acic::predict used to do) by at least
//     --min-speedup (default 5x) on the CART model.
// Everything else (ns/row, events/sec, wall p50/p99) is recorded for the
// trajectory and policed by the baseline's tolerance bands, because raw
// wall numbers vary with the host.
//
// Usage: perf_gate [--out=BENCH_perf.json] [--min-speedup=5.0]
//                  [--sim-runs=24]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "acic/apps/apps.hpp"
#include "acic/cloud/ioconfig.hpp"
#include "acic/common/rng.hpp"
#include "acic/core/paramspace.hpp"
#include "acic/core/predictor.hpp"
#include "acic/core/training.hpp"
#include "acic/io/runner.hpp"
#include "acic/ml/forest.hpp"
#include "acic/obs/metrics.hpp"

namespace {

using acic::MiB;
using acic::Rng;
using acic::core::Acic;
using acic::core::kNumDims;
using acic::core::Objective;
using acic::core::ParamSpace;
using acic::core::Point;
using acic::core::TrainingDatabase;
using acic::core::TrainingSample;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic synthetic training database over real exploration-space
/// points: a smooth response surface plus seeded noise, so the trained
/// trees get realistic depth without paying for simulations here.
TrainingDatabase make_database(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  TrainingDatabase db;
  const auto& dims = ParamSpace::dimensions();
  for (std::size_t n = 0; n < samples; ++n) {
    Point p = acic::core::default_point();
    for (const auto& spec : dims) {
      p[spec.dim] = spec.values[rng.uniform_index(spec.values.size())];
    }
    p = ParamSpace::repaired(p);

    // Piecewise-constant response over the config dimensions — the tree
    // structure real ACIC databases exhibit (Fig. 4: the file-system
    // switch dominates, then device and I/O-server count).  Noise-free
    // on purpose: CART then learns the minimal exact tree (splitting
    // stops when a cell's SSE hits zero), giving the gate a stable,
    // paper-scale tree shape — it measures evaluation cost, not
    // learning robustness.
    double improvement = 1.0;
    improvement += p[acic::core::kFileSystem] > 0.5 ? 0.8 : 0.0;
    improvement += p[acic::core::kDevice] > 0.5 ? 0.3 : 0.0;
    improvement += p[acic::core::kIoServers] > 2.5 ? 0.25 : 0.0;

    TrainingSample s;
    s.point = p;
    s.baseline_time = 100.0;
    s.baseline_cost = 10.0;
    s.time = s.baseline_time / improvement;
    s.cost = s.baseline_cost / improvement;
    db.insert(s);
  }
  return db;
}

/// The full evaluation grid: every candidate config under every
/// evaluation-suite application, encoded row-major.
std::vector<double> make_grid(std::size_t* n_rows) {
  const auto suite = acic::apps::evaluation_suite();
  const auto candidates = acic::cloud::IoConfig::enumerate_candidates();
  std::vector<double> grid;
  grid.reserve(suite.size() * candidates.size() * kNumDims);
  for (const auto& run : suite) {
    for (const auto& c : candidates) {
      const Point p = ParamSpace::encode(c, run.workload);
      grid.insert(grid.end(), p.begin(), p.end());
    }
  }
  *n_rows = suite.size() * candidates.size();
  return grid;
}

/// The legacy per-call prediction cost: one heap vector + one virtual
/// pointer-tree walk per row (what Acic::predict did before the batch
/// path landed).  The vector construction is part of the measured
/// baseline on purpose — it was part of the served latency.
double sum_per_call(const acic::ml::Learner& model,
                    const std::vector<double>& grid, std::size_t n_rows) {
  const std::size_t stride = grid.size() / n_rows;
  double sum = 0.0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const double* row = grid.data() + i * stride;
    sum += model.predict(std::vector<double>(row, row + stride));
  }
  return sum;
}

struct Timed {
  double ns_per_row = 0.0;
  double checksum = 0.0;  ///< anti-DCE accumulator
};

/// Repeat `pass` (which processes `n_rows` rows) until ~80 ms of work or
/// `min_reps`, whichever is more, and report the best pass — the usual
/// micro-benchmark noise-floor trick.
template <typename Pass>
Timed best_of(std::size_t n_rows, int min_reps, Pass&& pass) {
  Timed result;
  double best = std::numeric_limits<double>::infinity();
  double spent = 0.0;
  int reps = 0;
  while (reps < min_reps || spent < 0.08) {
    const double t0 = now_seconds();
    result.checksum += pass();
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++reps;
  }
  result.ns_per_row = best * 1e9 / static_cast<double>(n_rows);
  return result;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Stable-order JSON emission: metrics print in insertion order.
class JsonDoc {
 public:
  void add(const std::string& key, double value) {
    entries_.emplace_back(key, value);
  }
  std::string render() const {
    std::ostringstream os;
    os.precision(12);
    os << "{\n  \"schema\": \"acic_perf_gate_v1\",\n  \"metrics\": {\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      os << "    \"" << entries_[i].first << "\": " << entries_[i].second
         << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    os << "  }\n}\n";
    return os.str();
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  double min_speedup = 5.0;
  int sim_runs = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else if (arg.rfind("--sim-runs=", 0) == 0) {
      sim_runs = std::stoi(arg.substr(11));
    } else {
      std::cerr << "usage: perf_gate [--out=FILE] [--min-speedup=X]"
                << " [--sim-runs=N]\n";
      return 2;
    }
  }

  JsonDoc doc;
  int failures = 0;

  // ---- Models ------------------------------------------------------
  const TrainingDatabase db = make_database(/*samples=*/900, /*seed=*/17);
  const Acic cart(db, Objective::kPerformance);
  const Acic forest(db, Objective::kPerformance, [] {
    return std::make_unique<acic::ml::ForestRegressor>();
  });
  const std::vector<std::pair<const char*, const Acic*>> models = {
      {"cart", &cart}, {"forest", &forest}};

  std::size_t n_rows = 0;
  const std::vector<double> grid = make_grid(&n_rows);
  const std::size_t stride = grid.size() / n_rows;
  std::cout << "perf_gate: " << n_rows << "-row evaluation grid, "
            << db.size() << " training samples\n";
  doc.add("grid_rows", static_cast<double>(n_rows));

  // ---- Parity: batch must be bit-identical to the pointer tree -----
  for (const auto& [name, model] : models) {
    std::vector<double> batch(n_rows);
    model->model().predict_batch(grid, n_rows, batch);
    std::vector<double> per_row(n_rows);
    for (std::size_t i = 0; i < n_rows; ++i) {
      per_row[i] = model->model().predict(
          std::span<const double>(grid.data() + i * stride, stride));
    }
    const bool identical = bitwise_equal(batch, per_row);
    std::cout << "parity " << name << ": "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";
    doc.add(std::string(name) + "_parity_ok", identical ? 1.0 : 0.0);
    if (!identical) {
      std::cerr << "perf_gate: FAIL — " << name
                << " batch prediction diverges from the pointer tree\n";
      ++failures;
    }
  }

  // ---- Batch-predict speed vs the legacy per-call baseline ---------
  for (const auto& [name, model] : models) {
    const auto pointer = best_of(n_rows, 5, [&] {
      return sum_per_call(model->model(), grid, n_rows);
    });
    std::vector<double> out(n_rows);
    const auto batch = best_of(n_rows, 20, [&] {
      model->model().predict_batch(grid, n_rows, out);
      return out[0] + out[n_rows - 1];
    });
    const double speedup = pointer.ns_per_row / batch.ns_per_row;
    std::cout << name << ": pointer " << pointer.ns_per_row
              << " ns/row, batch " << batch.ns_per_row << " ns/row, "
              << speedup << "x\n";
    doc.add(std::string(name) + "_pointer_ns_per_row", pointer.ns_per_row);
    doc.add(std::string(name) + "_batch_ns_per_row", batch.ns_per_row);
    doc.add(std::string(name) + "_batch_speedup", speedup);
    if (std::string(name) == "cart" && speedup < min_speedup) {
      std::cerr << "perf_gate: FAIL — cart batch speedup " << speedup
                << "x is below the required " << min_speedup << "x\n";
      ++failures;
    }
  }

  // ---- Full-space walk: encode + batch-predict + argmax ------------
  {
    const auto suite = acic::apps::evaluation_suite();
    const auto candidates = acic::cloud::IoConfig::enumerate_candidates();
    const auto walk = best_of(n_rows, 5, [&] {
      double acc = 0.0;
      for (const auto& run : suite) {
        const auto scores = cart.predict_batch(candidates, run.workload);
        acc += *std::max_element(scores.begin(), scores.end());
      }
      return acc;
    });
    const double ms = walk.ns_per_row * static_cast<double>(n_rows) / 1e6;
    std::cout << "full-space walk (incl. encode): " << ms << " ms\n";
    doc.add("full_space_walk_ms", ms);
  }

  // ---- Simulator throughput ----------------------------------------
  {
    auto& registry = acic::obs::MetricsRegistry::global();
    const auto before = registry.snapshot();
    const double events_before =
        before.counter("sim.events") ? *before.counter("sim.events") : 0.0;

    acic::io::Workload w;
    w.name = "perf_gate";
    w.num_processes = 16;
    w.num_io_processes = 16;
    w.iterations = 4;
    w.data_size = 8.0 * MiB;
    w.request_size = 1.0 * MiB;
    w.collective = true;
    w.file_shared = true;
    w.normalize();

    const auto candidates = acic::cloud::IoConfig::enumerate_candidates();
    const double t0 = now_seconds();
    int runs = 0;
    for (int i = 0; i < sim_runs; ++i) {
      acic::io::RunOptions opts;
      opts.seed = 1000 + static_cast<std::uint64_t>(i);
      // Direct io::run_workload, NOT the exec engine: the run cache
      // would happily answer every repeat without simulating anything.
      const auto r = acic::io::run_workload(
          w, candidates[static_cast<std::size_t>(i) % candidates.size()],
          opts);
      (void)r;
      ++runs;
    }
    const double wall = now_seconds() - t0;

    const auto after = registry.snapshot();
    const double events_after =
        after.counter("sim.events") ? *after.counter("sim.events") : 0.0;
    const double events = events_after - events_before;
    const double events_per_sec = wall > 0.0 ? events / wall : 0.0;

    const auto* hist = after.histogram("io.sim_wall_us");
    const double p50 = hist ? hist->quantile(0.50) : 0.0;
    const double p99 = hist ? hist->quantile(0.99) : 0.0;

    std::cout << "simulator: " << runs << " runs, " << events
              << " events in " << wall << " s (" << events_per_sec
              << " events/s), wall p50 " << p50 << " us, p99 " << p99
              << " us\n";
    doc.add("sim_runs", static_cast<double>(runs));
    doc.add("sim_events", events);
    doc.add("sim_events_per_sec", events_per_sec);
    doc.add("sim_wall_us_p50", p50);
    doc.add("sim_wall_us_p99", p99);
  }

  // ---- Emit --------------------------------------------------------
  const std::string json = doc.render();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_gate: cannot write " << out_path << "\n";
    return 2;
  }
  out << json;
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (failures > 0) {
    std::cerr << "perf_gate: " << failures << " hard-gate failure(s)\n";
    return 1;
  }
  return 0;
}
