#include "support.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <mutex>

#include "acic/common/csv.hpp"
#include "acic/common/error.hpp"
#include "acic/common/stats.hpp"
#include "acic/exec/executor.hpp"
#include "acic/io/runner.hpp"

namespace acic::benchsup {

namespace {

constexpr std::uint64_t kMeasureSeed = 42;

/// Bench artifact directory.  ACIC_CACHE_DIR wins when set; the default
/// is an absolute path under the system temp directory — the old
/// cwd-relative "acic_bench_cache" sprayed a fresh cache into whatever
/// directory each bench happened to be launched from.
std::filesystem::path cache_dir() {
  static const std::filesystem::path dir = [] {
    std::filesystem::path d;
    if (const char* env = std::getenv("ACIC_CACHE_DIR"); env && *env) {
      d = std::filesystem::absolute(env);
    } else {
      d = std::filesystem::temp_directory_path() / "acic_bench_cache";
    }
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// The bench executor: the process-wide engine with its persistent tier
/// armed at the bench cache directory, so raw simulation results survive
/// across bench binaries (Executor::global() already armed it when the
/// user exported ACIC_CACHE_DIR; arm_store is idempotent).
exec::Executor& bench_executor() {
  static exec::Executor& engine = []() -> exec::Executor& {
    auto& e = exec::Executor::global();
    e.arm_store((cache_dir() / "runs").string());
    if (e.store_degraded()) {
      // The bench still runs — results just won't survive this process.
      std::fprintf(stderr,
                   "[bench] run store degraded to memo-only; raw runs will "
                   "not be shared across bench binaries\n");
    }
    return e;
  }();
  return engine;
}

io::RunOptions measure_opts(std::uint64_t salt) {
  io::RunOptions o;
  o.seed = kMeasureSeed ^ salt;
  return o;
}

std::uint64_t label_salt(const std::string& label) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

core::TrainingStats g_last_stats;

}  // namespace

std::string app_key(const std::string& app, int scale) {
  return app + "/" + std::to_string(scale);
}

Measurement measure(const apps::AppRun& run, const cloud::IoConfig& config) {
  // No by-label scan of the ground-truth table needed: the engine's
  // canonical key makes a repeated measurement a cache hit, including
  // the 9x56 grid warmed by ground_truth().
  const auto r = bench_executor().run(exec::RunRequest{
      run.workload, config, measure_opts(label_salt(config.label()))});
  return Measurement{config.label(), r.total_time, r.cost};
}

const std::map<std::string, std::vector<Measurement>>& ground_truth() {
  static std::map<std::string, std::vector<Measurement>> cache;
  static std::once_flag once;
  std::call_once(once, [] {
    // The old hand-rolled ground_truth.csv is gone: the 504-cell grid is
    // one deduplicating batch against the engine, and the persistent run
    // store under cache_dir() is what makes the second bench process
    // load instead of simulate.
    std::fprintf(stderr,
                 "[bench] measuring ground truth (9 app runs x 56 candidate"
                 " configs)...\n");
    const auto candidates = cloud::IoConfig::enumerate_candidates();
    std::vector<exec::RunRequest> requests;
    std::vector<std::pair<std::string, std::string>> cells;  // app, label
    for (const auto& run : apps::evaluation_suite()) {
      for (const auto& cfg : candidates) {
        requests.push_back(exec::RunRequest{
            run.workload, cfg, measure_opts(label_salt(cfg.label()))});
        cells.emplace_back(app_key(run.app, run.scale), cfg.label());
      }
    }
    const auto results = bench_executor().run_batch(requests);
    for (std::size_t i = 0; i < results.size(); ++i) {
      cache[cells[i].first].push_back(Measurement{
          cells[i].second, results[i].total_time, results[i].cost});
    }
  });
  return cache;
}

const core::PbRankingResult& pb_ranking() {
  static core::PbRankingResult result;
  static std::once_flag once;
  std::call_once(once, [] {
    const auto path = cache_dir() / "pb_response.csv";
    if (std::filesystem::exists(path)) {
      const auto table = read_csv_file(path.string());
      std::vector<double> response;
      for (const auto& row : table.rows) response.push_back(std::stod(row[0]));
      const int runs = core::PbDesign::runs_for(core::kNumDims);
      result.design = core::PbDesign::foldover(runs);
      if (response.size() == result.design.size()) {
        result.response = response;
        // Same log-response screening as run_pb_ranking's default.
        std::vector<double> screening = response;
        for (double& r : screening) r = std::log(std::max(r, 1e-9));
        result.effects = core::PbDesign::effects(result.design, screening,
                                                 core::kNumDims);
        result.importance = core::PbDesign::ranking(result.effects);
        result.rank_of_each = core::PbDesign::rank_of_each(result.effects);
        std::fprintf(stderr, "[bench] PB screening loaded from cache\n");
        return;
      }
    }
    std::fprintf(stderr, "[bench] running PB screening (32 IOR runs)...\n");
    result = core::run_pb_ranking();
    CsvTable table;
    table.header = {"response"};
    char buf[64];
    for (double r : result.response) {
      std::snprintf(buf, sizeof(buf), "%.17g", r);
      table.rows.push_back({buf});
    }
    write_csv_file(path.string(), table);
  });
  return result;
}

const core::TrainingDatabase& training_db(int top_dims,
                                          std::size_t max_samples,
                                          std::uint64_t seed) {
  static std::map<std::string, core::TrainingDatabase> dbs;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  const std::string key = std::to_string(top_dims) + "_" +
                          std::to_string(max_samples) + "_" +
                          std::to_string(seed);
  auto it = dbs.find(key);
  if (it != dbs.end()) return it->second;

  const auto path = cache_dir() / ("training_db_" + key + ".csv");
  if (std::filesystem::exists(path)) {
    g_last_stats = core::TrainingStats{};
    auto [ins, ok] =
        dbs.emplace(key, core::TrainingDatabase::load(path.string()));
    std::fprintf(stderr, "[bench] training db %s loaded from cache (%zu)\n",
                 key.c_str(), ins->second.size());
    return ins->second;
  }
  std::fprintf(stderr,
               "[bench] collecting training db (top %d dims, <=%zu "
               "samples)...\n",
               top_dims, max_samples);
  core::TrainingDatabase db;
  core::TrainingPlan plan;
  plan.dim_order = pb_ranking().importance;
  plan.top_dims = top_dims;
  plan.max_samples = max_samples;
  plan.seed = seed;
  g_last_stats = core::collect_training_data(db, plan);
  db.save(path.string());
  auto [ins, ok] = dbs.emplace(key, std::move(db));
  return ins->second;
}

core::TrainingStats last_training_stats() { return g_last_stats; }

const Measurement& find_measurement(const std::vector<Measurement>& ms,
                                    const std::string& label) {
  for (const auto& m : ms) {
    if (m.label == label) return m;
  }
  throw Error("no measurement for config " + label);
}

double median_time(const std::vector<Measurement>& ms) {
  std::vector<double> v;
  for (const auto& m : ms) v.push_back(m.time);
  return median_of(v);
}

double median_cost(const std::vector<Measurement>& ms) {
  std::vector<double> v;
  for (const auto& m : ms) v.push_back(m.cost);
  return median_of(v);
}

const Measurement& best_time(const std::vector<Measurement>& ms) {
  return *std::min_element(ms.begin(), ms.end(),
                           [](const Measurement& a, const Measurement& b) {
                             return a.time < b.time;
                           });
}

const Measurement& best_cost(const std::vector<Measurement>& ms) {
  return *std::min_element(ms.begin(), ms.end(),
                           [](const Measurement& a, const Measurement& b) {
                             return a.cost < b.cost;
                           });
}

const Measurement& baseline(const std::vector<Measurement>& ms) {
  return find_measurement(ms, cloud::IoConfig::baseline().label());
}

double value_of(const Measurement& m, core::Objective objective) {
  return objective == core::Objective::kPerformance ? m.time : m.cost;
}

Measurement measured_top_choice(const core::Acic& acic,
                                const apps::AppRun& run,
                                core::Objective objective) {
  const auto recs = acic.recommend(run.workload, 0);  // all, sorted
  ACIC_CHECK(!recs.empty());
  const double top = recs.front().predicted_improvement;
  std::vector<Measurement> champions;
  for (const auto& r : recs) {
    if (r.predicted_improvement < top - 1e-9) break;
    champions.push_back(measure(run, r.config));
  }
  std::sort(champions.begin(), champions.end(),
            [&](const Measurement& a, const Measurement& b) {
              return value_of(a, objective) < value_of(b, objective);
            });
  return champions[champions.size() / 2];
}

double best_measured_of_topk(const core::Acic& acic,
                             const apps::AppRun& run, std::size_t k,
                             core::Objective objective) {
  const auto recs = acic.recommend(run.workload, k);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& rec : recs) {
    best = std::min(best, value_of(measure(run, rec.config), objective));
  }
  return best;
}

}  // namespace acic::benchsup
